package mem

import "heracles/internal/queue"

// InflationCoeff and InflationPower shape the latency inflation curve
// g(rho) = 1 + coeff*rho^power/(1-rho). The defaults keep inflation below
// ~5% until 70% utilisation and triple access latency by ~97%.
const (
	InflationCoeff = 0.12
	InflationPower = 4.0
	// OverloadPenalty scales the additional inflation applied per unit of
	// unmet demand when total demand exceeds the socket's peak bandwidth
	// (the open queue grows without bound; we model a steep finite proxy).
	OverloadPenalty = 8.0
)

// Result describes the resolution of one socket's DRAM bandwidth.
type Result struct {
	AchievedGBs []float64 // per demand, in input order
	TotalGBs    float64   // sum of achieved bandwidth
	DemandGBs   float64   // sum of requested bandwidth
	Utilisation float64   // achieved / peak, in [0, 1]
	Inflation   float64   // memory access latency multiplier (>= 1)
}

// Resolve shares peakGBs of bandwidth among the demands. When total demand
// fits, every demand is satisfied; otherwise bandwidth is divided
// proportionally to demand (DRAM controllers are roughly fair across
// streams) and the latency inflation grows with the overload ratio.
func Resolve(peakGBs float64, demands []float64) Result {
	return ResolveInto(make([]float64, len(demands)), peakGBs, demands)
}

// ResolveInto is Resolve writing the achieved bandwidths into dst (which
// must have capacity for len(demands) entries) so steady-state callers
// allocate nothing. The Result aliases dst.
func ResolveInto(dst []float64, peakGBs float64, demands []float64) Result {
	dst = dst[:len(demands)]
	for i := range dst {
		dst[i] = 0
	}
	res := Result{AchievedGBs: dst}
	if peakGBs <= 0 {
		return res
	}
	var total float64
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	res.DemandGBs = total
	if total <= peakGBs {
		for i, d := range demands {
			if d > 0 {
				res.AchievedGBs[i] = d
			}
		}
		res.TotalGBs = total
		res.Utilisation = total / peakGBs
		res.Inflation = queue.SaturationInflation(res.Utilisation, InflationCoeff, InflationPower)
		return res
	}
	scale := peakGBs / total
	for i, d := range demands {
		if d > 0 {
			res.AchievedGBs[i] = d * scale
		}
	}
	res.TotalGBs = peakGBs
	res.Utilisation = 1
	overload := total/peakGBs - 1
	res.Inflation = queue.SaturationInflation(0.995, InflationCoeff, InflationPower) *
		(1 + OverloadPenalty*overload)
	return res
}
