package mem

import (
	"testing"
	"testing/quick"
)

func TestResolveUnderCapacity(t *testing.T) {
	res := Resolve(60, []float64{10, 20})
	if res.AchievedGBs[0] != 10 || res.AchievedGBs[1] != 20 {
		t.Fatalf("achieved = %v", res.AchievedGBs)
	}
	if res.TotalGBs != 30 || res.Utilisation != 0.5 {
		t.Fatalf("total=%v util=%v", res.TotalGBs, res.Utilisation)
	}
	if res.Inflation < 1 || res.Inflation > 1.05 {
		t.Fatalf("inflation at 50%% = %v", res.Inflation)
	}
}

func TestResolveOverCapacityScalesProportionally(t *testing.T) {
	res := Resolve(60, []float64{60, 60})
	if res.AchievedGBs[0] != 30 || res.AchievedGBs[1] != 30 {
		t.Fatalf("achieved = %v", res.AchievedGBs)
	}
	if res.TotalGBs != 60 || res.Utilisation != 1 {
		t.Fatalf("total=%v util=%v", res.TotalGBs, res.Utilisation)
	}
	if res.Inflation < 10 {
		t.Fatalf("overload inflation = %v, want large", res.Inflation)
	}
}

func TestResolveInflationGrowsNearSaturation(t *testing.T) {
	low := Resolve(60, []float64{30}).Inflation
	mid := Resolve(60, []float64{50}).Inflation
	high := Resolve(60, []float64{57}).Inflation
	if !(low < mid && mid < high) {
		t.Fatalf("inflation not monotone: %v %v %v", low, mid, high)
	}
	if high < 1.5 {
		t.Fatalf("inflation at 95%% = %v, want >1.5", high)
	}
}

func TestResolveNegativeDemandsIgnored(t *testing.T) {
	res := Resolve(60, []float64{-5, 20})
	if res.AchievedGBs[0] != 0 || res.AchievedGBs[1] != 20 {
		t.Fatalf("achieved = %v", res.AchievedGBs)
	}
}

func TestResolveZeroPeak(t *testing.T) {
	res := Resolve(0, []float64{10})
	if res.AchievedGBs[0] != 0 {
		t.Fatalf("achieved with zero peak = %v", res.AchievedGBs)
	}
}

func TestResolveConservationProperty(t *testing.T) {
	if err := quick.Check(func(d1, d2, d3 uint16) bool {
		demands := []float64{float64(d1), float64(d2), float64(d3)}
		res := Resolve(60, demands)
		var sum float64
		for i, a := range res.AchievedGBs {
			if a < 0 || a > demands[i]+1e-9 {
				return false
			}
			sum += a
		}
		return sum <= 60.0001
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResolveOverloadInflationGrowsWithOverload(t *testing.T) {
	a := Resolve(60, []float64{70}).Inflation
	b := Resolve(60, []float64{140}).Inflation
	if b <= a {
		t.Fatalf("inflation should grow with overload: %v -> %v", a, b)
	}
}
