// Package mem models per-socket DRAM bandwidth: proportional sharing
// when demand exceeds the controllers' peak streaming bandwidth, and the
// queueing-delay inflation that memory accesses suffer as the channels
// approach saturation.
//
// The paper (§2) notes there is no commercially available DRAM bandwidth
// isolation mechanism, which is why Heracles falls back to scaling down
// best-effort cores when the socket's measured bandwidth crosses its
// limit. This model provides the measured-bandwidth counters that
// decision needs: the machine model calls it once per socket per epoch
// and exposes the results as the per-controller registers the §4.3
// memory subcontroller polls. ResolveInto is the allocation-free variant
// used by the stepping hot path.
package mem
