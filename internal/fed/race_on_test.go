//go:build race

package fed

// raceEnabled scales the federation scale test down when the race
// detector multiplies its memory and CPU cost.
const raceEnabled = true
