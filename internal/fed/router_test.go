package fed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"heracles/internal/experiment"
	"heracles/internal/serve"
)

var testLab = experiment.DefaultLab()

// member is one in-process daemon behind the router.
type member struct {
	srv *serve.Server
	ts  *httptest.Server
}

// newFleet starts n member daemons and a router over them.
func newFleet(t *testing.T, n, maxInstances int) ([]member, *Router, *httptest.Server) {
	t.Helper()
	members := make([]member, n)
	urls := make([]string, n)
	for i := range members {
		srv := serve.New(serve.Config{Lab: testLab, Shards: 2, MaxInstances: maxInstances})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(srv.Close)
		members[i] = member{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	rt, err := NewRouter(Config{Members: urls})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	fts := httptest.NewServer(rt.Handler())
	t.Cleanup(fts.Close)
	return members, rt, fts
}

func doReq(t *testing.T, method, url string, body any, wantCode int) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d; body %s", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

// await polls cond with a bounded deadline; the federation tests cross
// process-style HTTP boundaries, so there is no in-process event to wait
// on.
func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFederationLifecycle drives the router's whole surface against
// three live daemons: hash-placed create, proxied reads and actuation,
// router-driven cross-member migration, job fan-out, and the aggregated
// health and metrics endpoints.
func TestFederationLifecycle(t *testing.T) {
	members, rt, fts := newFleet(t, 3, 64)

	// Create a handful of instances; each must land on the member the
	// placement table names.
	var infos []InstanceInfo
	for k := 0; k < 6; k++ {
		body := doReq(t, "POST", fts.URL+"/api/v1/instances", serve.InstanceSpec{Speed: 500, Load: 0.3}, 201)
		var info InstanceInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if want := rt.table.Place(info.ID); info.Member != want {
			t.Fatalf("instance %s landed on %s, placement table says %s", info.ID, info.Member, want)
		}
		infos = append(infos, info)
	}

	// List and get agree, with federated ids.
	var listing struct {
		Instances []InstanceInfo `json:"instances"`
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances", nil, 200), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Instances) != len(infos) {
		t.Fatalf("router lists %d instances, want %d", len(listing.Instances), len(infos))
	}
	var got InstanceInfo
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+infos[0].ID, nil, 200), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != infos[0].ID || got.Member != infos[0].Member {
		t.Fatalf("get %s = %+v", infos[0].ID, got)
	}

	// Actuation proxies through to the hosting member.
	doReq(t, "PUT", fts.URL+"/api/v1/instances/"+infos[0].ID+"/load", map[string]float64{"load": 0.6}, 200)

	// Router-driven migration: the instance moves to the named member and
	// keeps answering under its federated id.
	target := ""
	for _, m := range rt.Members() {
		if m != infos[0].Member {
			target = m
			break
		}
	}
	var res serve.MigrateResult
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/instances/"+infos[0].ID+"/migrate",
		FedMigrateRequest{Member: target}, 200), &res); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+infos[0].ID, nil, 200), &got); err != nil {
		t.Fatal(err)
	}
	if got.Member != target || got.MemberID != res.To {
		t.Fatalf("after migration: %+v, want member %s id %s", got, target, res.To)
	}
	// The load actuation crossed the member boundary: the restored copy's
	// next resolved epoch reflects it.
	await(t, "migrated instance serving the raised load", func() bool {
		var cur InstanceInfo
		if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+infos[0].ID, nil, 200), &cur); err != nil {
			t.Fatal(err)
		}
		return cur.Last.Load > 0.55
	})

	// Jobs fan out and come back under federated ids.
	var js serve.JobStatus
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/jobs",
		serve.JobSubmission{Workload: "brain", WorkS: 1e9}, 201), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID != 1 {
		t.Fatalf("first federated job id = %d, want 1", js.ID)
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+fmt.Sprintf("/api/v1/jobs/%d", js.ID), nil, 200), &js); err != nil {
		t.Fatal(err)
	}
	var jobs struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/jobs", nil, 200), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs.Jobs) != 1 || jobs.Jobs[0].ID != 1 {
		t.Fatalf("federated job list = %+v", jobs.Jobs)
	}
	doReq(t, "DELETE", fts.URL+fmt.Sprintf("/api/v1/jobs/%d", js.ID), nil, 200)

	var schedSt serve.SchedulerStatus
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/sched", nil, 200), &schedSt); err != nil {
		t.Fatal(err)
	}
	if schedSt.Submitted != 1 {
		t.Fatalf("merged sched accounting: submitted = %d, want 1", schedSt.Submitted)
	}

	// Aggregated health: all members up, instance count matches.
	var hz struct {
		Status     string `json:"status"`
		Members    int    `json:"members"`
		MembersUp  int    `json:"members_up"`
		Instances  int    `json:"instances"`
		Migrations int64  `json:"migrations"`
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/healthz", nil, 200), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.MembersUp != 3 || hz.Instances != len(infos) || hz.Migrations != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	// Aggregated metrics name every fed family.
	text := string(doReq(t, "GET", fts.URL+"/metrics", nil, 200))
	for _, name := range MetricNames() {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Fatalf("/metrics missing family %s", name)
		}
	}
	if !strings.Contains(text, "heracles_fed_migrations_total 1") {
		t.Fatalf("migration counter missing from exposition:\n%s", text)
	}

	// Delete drains everything, on the members too.
	for _, info := range infos {
		doReq(t, "DELETE", fts.URL+"/api/v1/instances/"+info.ID, nil, 200)
	}
	total := 0
	for _, m := range members {
		total += m.srv.Registry().Len()
	}
	if total != 0 {
		t.Fatalf("members still hold %d instances after federated deletes", total)
	}
}

// TestFederationScaleAndBitIdenticalMigration is the federation
// acceptance run: three daemons behind the router sustain tens of
// thousands of federated creates, a slice of live instances migrates
// across members mid-run, and one scenario-rich instance's final engine
// state is pinned bit-identical to an unfederated, unmigrated reference
// run.
func TestFederationScaleAndBitIdenticalMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("federation scale test skipped in -short")
	}
	n := 30_000
	if raceEnabled {
		n = 2_000
	}
	_, rt, fts := newFleet(t, 3, n+16)

	// The reference: the same scenario run to completion on a plain
	// unsharded server, never migrated.
	refSrv := serve.New(serve.Config{Lab: testLab})
	t.Cleanup(refSrv.Close)
	refInst, err := refSrv.CreateInstance(richSpec(serve.SpeedMax))
	if err != nil {
		t.Fatalf("reference create: %v", err)
	}
	await(t, "reference run", func() bool { return refInst.Status().State == serve.StateDone })
	refCp, err := refInst.Checkpoint()
	if err != nil {
		t.Fatalf("reference checkpoint: %v", err)
	}
	want, err := json.Marshal(refCp.Engine)
	if err != nil {
		t.Fatal(err)
	}

	// The probe: same scenario, paced, created through the router.
	var probe InstanceInfo
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/instances", richSpec(500), 201), &probe); err != nil {
		t.Fatal(err)
	}

	// The bulk: parked instances (paced far below one epoch per test
	// lifetime), created concurrently through the router.
	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < n; k += workers {
				body, _ := json.Marshal(serve.InstanceSpec{Speed: 1e-6})
				resp, err := http.Post(fts.URL+"/api/v1/instances", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("create %d: status %d", k, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Migrate the probe across members twice, mid-run.
	epochOf := func(fid string) uint64 {
		var info InstanceInfo
		if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+fid, nil, 200), &info); err != nil {
			t.Fatal(err)
		}
		return info.Epoch
	}
	cur := probe.Member
	for hop, minEpoch := range []uint64{30, 80} {
		await(t, "probe mid-run epoch", func() bool { return epochOf(probe.ID) >= minEpoch })
		target := ""
		for _, m := range rt.Members() {
			if m != cur {
				target = m
				break
			}
		}
		doReq(t, "POST", fts.URL+"/api/v1/instances/"+probe.ID+"/migrate", FedMigrateRequest{Member: target}, 200)
		var info InstanceInfo
		if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+probe.ID, nil, 200), &info); err != nil {
			t.Fatal(err)
		}
		if info.Member != target {
			t.Fatalf("hop %d: probe on %s, want %s", hop, info.Member, target)
		}
		cur = target
	}

	// The probe finishes; its engine state must match the reference byte
	// for byte — telemetry rings, controller state and BE scheduler
	// accounting all crossed two process boundaries intact.
	await(t, "probe run complete", func() bool {
		var info InstanceInfo
		if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+probe.ID, nil, 200), &info); err != nil {
			t.Fatal(err)
		}
		return info.State == serve.StateDone
	})
	var cp serve.InstanceCheckpoint
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/instances/"+probe.ID+"/checkpoint", nil, 200), &cp); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(cp.Engine)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("federated migration diverged from the reference run (%d vs %d bytes)", len(got), len(want))
	}

	// Every member carries a sane share and the aggregate adds up.
	var hz struct {
		MembersUp int `json:"members_up"`
		Instances int `json:"instances"`
	}
	if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/healthz", nil, 200), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.MembersUp != 3 || hz.Instances != n+1 {
		t.Fatalf("healthz after scale run = %+v, want 3 members up, %d instances", hz, n+1)
	}
	snap := rt.snapshot()
	for _, m := range snap.Members {
		if m.Instances < n/6 {
			t.Fatalf("member %s holds %d instances — placement is badly skewed for %d total", m.Member, m.Instances, n)
		}
	}
}

// richSpec mirrors the serve package's migration spec: scenario load
// shapes, BE arrival/departure and an SLO tightening, so the state that
// crosses the wire is far from trivial.
func richSpec(speed float64) serve.InstanceSpec {
	return serve.InstanceSpec{
		Load:      0.3,
		Speed:     speed,
		MaxEpochs: 130,
		Scenario: &serve.ScenarioSpec{
			Name:      "fed-migration-mix",
			DurationS: 120,
			Load: &serve.ShapeSpec{
				Kind: "sum",
				Terms: []serve.ShapeSpec{
					{Kind: "flat", Value: 0.3},
					{Kind: "flashcrowd", StartS: 60, RiseS: 10, HoldS: 10, FallS: 10, Amp: 0.4},
				},
				Clamp: &serve.ClampSpec{Lo: 0, Hi: 0.85},
			},
			Events: []serve.EventSpec{
				{AtS: 30, Kind: "be-arrive", Workload: "brain"},
				{AtS: 60, Kind: "slo-scale", Factor: 0.8},
				{AtS: 90, Kind: "be-depart", Workload: "brain"},
			},
		},
	}
}

// TestFederationJoinLeaveRebalance grows and shrinks the member set:
// joining a member moves only the instances whose hash home changed
// (bounded by the rendezvous-hash minimal-movement property), leaving
// drains the departing member entirely, and both keep every instance
// reachable under its federated id.
func TestFederationJoinLeaveRebalance(t *testing.T) {
	members, rt, fts := newFleet(t, 2, 256)

	const n = 60
	ids := make([]string, 0, n)
	for k := 0; k < n; k++ {
		var info InstanceInfo
		if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/instances", serve.InstanceSpec{Speed: 1e-6}, 201), &info); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}

	// Join a third member.
	joiner := serve.New(serve.Config{Lab: testLab, Shards: 2, MaxInstances: 256})
	jts := httptest.NewServer(joiner.Handler())
	t.Cleanup(jts.Close)
	t.Cleanup(joiner.Close)
	var joinRes struct {
		Member string `json:"member"`
		Moved  int    `json:"moved"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/members", map[string]string{"url": jts.URL}, 200), &joinRes); err != nil {
		t.Fatal(err)
	}
	if joinRes.Error != "" {
		t.Fatalf("join rebalance error: %s", joinRes.Error)
	}
	// Rendezvous hashing moves ~n/members keys to the joiner; allow the
	// same slack as the chash property test.
	bound := n/3 + 1 + n/10
	if joinRes.Moved == 0 || joinRes.Moved > bound {
		t.Fatalf("join moved %d instances, want 1..%d", joinRes.Moved, bound)
	}
	if got := joiner.Registry().Len(); got != joinRes.Moved {
		t.Fatalf("joiner hosts %d instances, join reported %d moved", got, joinRes.Moved)
	}
	// Every instance answers under its federated id and sits on its hash
	// home.
	for _, fid := range ids {
		var info InstanceInfo
		if err := json.Unmarshal(doReq(t, "GET", fts.URL+"/api/v1/instances/"+fid, nil, 200), &info); err != nil {
			t.Fatal(err)
		}
		if want := rt.table.Place(fid); info.Member != want {
			t.Fatalf("after join, %s on %s, placement says %s", fid, info.Member, want)
		}
	}
	// A no-op rebalance moves nothing.
	var rb struct {
		Moved int `json:"moved"`
	}
	if err := json.Unmarshal(doReq(t, "POST", fts.URL+"/api/v1/rebalance", nil, 200), &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Moved != 0 {
		t.Fatalf("steady-state rebalance moved %d instances, want 0", rb.Moved)
	}

	// The joiner leaves again: its instances drain back to the others.
	var leaveRes struct {
		Moved int    `json:"moved"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(doReq(t, "DELETE", fts.URL+"/api/v1/members", map[string]string{"url": jts.URL}, 200), &leaveRes); err != nil {
		t.Fatal(err)
	}
	if leaveRes.Error != "" {
		t.Fatalf("leave rebalance error: %s", leaveRes.Error)
	}
	if got := joiner.Registry().Len(); got != 0 {
		t.Fatalf("departed member still hosts %d instances", got)
	}
	total := 0
	for _, m := range members {
		total += m.srv.Registry().Len()
	}
	if total != n {
		t.Fatalf("survivors host %d instances, want %d", total, n)
	}
}

// TestFedMetricNamesMatchRenderer keeps MetricNames — the registry the
// docs check reads — in lockstep with what WriteFedMetrics and
// WriteProxyMetrics emit.
func TestFedMetricNamesMatchRenderer(t *testing.T) {
	var b strings.Builder
	WriteFedMetrics(&b, Snapshot{
		Members: []MemberSnapshot{{
			Member: "http://a", Up: true, Instances: 2,
			Shards: []serve.ShardStatus{{Shard: 0, Instances: 2}},
		}},
		Migrations: 1,
		Proxied:    9,
	})
	WriteProxyMetrics(&b)
	rendered := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
			rendered[f[2]] = true
		}
	}
	declared := map[string]bool{}
	for _, name := range MetricNames() {
		if declared[name] {
			t.Errorf("MetricNames lists %q twice", name)
		}
		declared[name] = true
		if !rendered[name] {
			t.Errorf("MetricNames lists %q but WriteFedMetrics never emits it", name)
		}
	}
	for name := range rendered {
		if !declared[name] {
			t.Errorf("WriteFedMetrics emits %q but MetricNames does not list it", name)
		}
	}
}
