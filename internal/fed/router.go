// Package fed federates several heraclesd daemons behind one control
// plane (DESIGN.md §14). The router owns the public instance namespace:
// creates are placed on a member by rendezvous hashing of the federated
// id, reads and actuation proxy through to the hosting member, and
// migration rides the daemons' own checkpoint/restore migration
// primitive — the router asks the source daemon to peer-migrate, then
// repoints its mapping at the restored copy. /healthz and /metrics
// aggregate every member, so a fleet of daemons scrapes like one.
package fed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heracles/internal/chash"
	"heracles/internal/serve"
)

// DefaultSeed seeds the router's placement table when the config leaves
// it zero; fixed so a restarted router re-derives the same placements.
const DefaultSeed = 0x4865726146656431 // "HeraFed1"

// Config configures a Router.
type Config struct {
	// Members are the base URLs of the member daemons ("http://host:port").
	Members []string
	// Seed fixes hash placement; 0 selects DefaultSeed.
	Seed uint64
	// Client performs member requests; nil selects a 120s-timeout client
	// (restore bodies shipped during migration can be large).
	Client *http.Client
}

// placement records where a federated instance currently lives.
type placement struct {
	member  string // member base URL
	localID string // the member daemon's own instance id
}

// jobRef records which member scheduler owns a federated job.
type jobRef struct {
	member  string
	localID int
}

// InstanceInfo is a member instance as the router reports it: the
// daemon's own Status with ID rewritten to the federated id, plus the
// hosting member and the member-local id.
type InstanceInfo struct {
	serve.Status
	Member   string `json:"member"`
	MemberID string `json:"member_id"`
}

// FedMigrateRequest is the body of the router's migrate route: the base
// URL of the member to move the instance to.
type FedMigrateRequest struct {
	Member string `json:"member"`
}

// Router proxies a federated control plane over member daemons.
type Router struct {
	client *http.Client
	mux    *http.ServeMux

	mu      sync.Mutex
	seed    uint64
	table   *chash.Table
	members []string // sorted member URLs, the hash population
	seq     int
	insts   map[string]placement         // fed id → placement
	rev     map[string]map[string]string // member → local id → fed id
	jobSeq  int
	jobs    map[int]jobRef

	proxied    atomic.Int64 // requests forwarded to members
	migrations atomic.Int64 // router-driven migrations
}

// NewRouter builds a router over the configured members. Placement is a
// pure function of (seed, member set, fed id), so two routers configured
// alike agree on where everything goes.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fed: no members configured")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	members := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		m = strings.TrimSuffix(strings.TrimSpace(m), "/")
		if m == "" {
			return nil, fmt.Errorf("fed: empty member URL")
		}
		members = append(members, m)
	}
	sort.Strings(members)
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 120 * time.Second}
	}
	rt := &Router{
		client:  client,
		seed:    seed,
		table:   chash.New(seed, members...),
		members: members,
		insts:   make(map[string]placement),
		rev:     make(map[string]map[string]string),
		jobs:    make(map[int]jobRef),
	}
	rt.mux = http.NewServeMux()
	for _, r := range routeTable {
		handler := r.handler
		pattern := r.Pattern
		if r.Method != "ANY" {
			pattern = r.Method + " " + r.Pattern
		}
		rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
			handler(rt, w, req)
		})
	}
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Members returns the current member URLs (sorted).
func (rt *Router) Members() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]string(nil), rt.members...)
}

// Route is one registered router route.
type Route struct {
	Method  string // "ANY" matches every method
	Pattern string
	Doc     string

	handler func(*Router, http.ResponseWriter, *http.Request)
}

// routeTable is the single source of truth for the router's HTTP
// surface; Routes exposes it for documentation enforcement.
var routeTable = []Route{
	{"GET", "/healthz", "aggregate liveness across member daemons", (*Router).handleHealthz},
	{"GET", "/metrics", "aggregated heracles_fed_* exposition across members", (*Router).handleMetrics},
	{"GET", "/api/v1/members", "list member daemons and the placement table", (*Router).handleMembersList},
	{"POST", "/api/v1/members", "join a member daemon to the federation", (*Router).handleMemberJoin},
	{"DELETE", "/api/v1/members", "remove a member daemon, migrating its instances away first", (*Router).handleMemberLeave},
	{"POST", "/api/v1/rebalance", "migrate every instance whose hash home changed back onto it", (*Router).handleRebalance},
	{"GET", "/api/v1/instances", "list federated instances across all members", (*Router).handleInstancesList},
	{"POST", "/api/v1/instances", "create an instance, placed on a member by consistent hash", (*Router).handleInstanceCreate},
	{"GET", "/api/v1/instances/{id}", "inspect one federated instance", (*Router).handleInstanceGet},
	{"DELETE", "/api/v1/instances/{id}", "stop and remove a federated instance", (*Router).handleInstanceDelete},
	{"POST", "/api/v1/instances/{id}/migrate", "migrate a federated instance onto another member daemon", (*Router).handleInstanceMigrate},
	{"ANY", "/api/v1/instances/{id}/{rest...}", "proxy any other instance sub-resource (load, slo, faults, stream, ...) to the hosting member", (*Router).handleInstanceProxy},
	{"POST", "/api/v1/jobs", "submit a best-effort job to a member scheduler round-robin", (*Router).handleJobSubmit},
	{"GET", "/api/v1/jobs", "list federated jobs across all members", (*Router).handleJobsList},
	{"GET", "/api/v1/jobs/{id}", "inspect one federated job", (*Router).handleJobGet},
	{"DELETE", "/api/v1/jobs/{id}", "cancel a federated job", (*Router).handleJobCancel},
	{"GET", "/api/v1/sched", "merged fleet-scheduler accounting across members", (*Router).handleSched},
}

// Routes lists "METHOD /pattern" for every registered route; the docs
// check keeps docs/API.md complete against it.
func Routes() []string {
	out := make([]string, len(routeTable))
	for i, r := range routeTable {
		out[i] = r.Method + " " + r.Pattern
	}
	return out
}

// --- Handler plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// lookup resolves a federated id to its placement.
func (rt *Router) lookup(fid string) (placement, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.insts[fid]
	return p, ok
}

// repoint atomically moves a federated id's mapping.
func (rt *Router) repoint(fid string, p placement) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if old, ok := rt.insts[fid]; ok {
		delete(rt.rev[old.member], old.localID)
	}
	rt.insts[fid] = p
	if rt.rev[p.member] == nil {
		rt.rev[p.member] = make(map[string]string)
	}
	rt.rev[p.member][p.localID] = fid
}

// forget drops a federated id's mapping.
func (rt *Router) forget(fid string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if p, ok := rt.insts[fid]; ok {
		delete(rt.rev[p.member], p.localID)
		delete(rt.insts, fid)
	}
}

// memberDo performs one member request and counts it.
func (rt *Router) memberDo(method, url string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rt.proxied.Add(1)
	start := time.Now()
	resp, err := rt.client.Do(req)
	proxyHist.Observe(time.Since(start))
	return resp, err
}

// relay copies a member response through to the client verbatim,
// flushing per chunk so SSE streams pass through live.
func relay(w http.ResponseWriter, resp *http.Response) {
	for _, k := range []string{"Content-Type", "Cache-Control"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// --- Instance routes ---------------------------------------------------

func (rt *Router) handleInstanceCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	rt.mu.Lock()
	rt.seq++
	fid := fmt.Sprintf("f%d", rt.seq)
	member := rt.table.Place(fid)
	rt.mu.Unlock()

	resp, err := rt.memberDo("POST", member+"/api/v1/instances", bytes.NewReader(body), "application/json")
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", member, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		relay(w, resp)
		return
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		apiError(w, http.StatusBadGateway, "member %s: decoding create response: %v", member, err)
		return
	}
	rt.repoint(fid, placement{member: member, localID: st.ID})
	info := InstanceInfo{Status: st, Member: member, MemberID: st.ID}
	info.ID = fid
	writeJSON(w, http.StatusCreated, info)
}

func (rt *Router) handleInstancesList(w http.ResponseWriter, _ *http.Request) {
	type memberList struct {
		member string
		sts    []serve.Status
		err    error
	}
	members := rt.Members()
	results := make([]memberList, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			resp, err := rt.memberDo("GET", m+"/api/v1/instances", nil, "")
			if err != nil {
				results[i] = memberList{member: m, err: err}
				return
			}
			defer resp.Body.Close()
			var body struct {
				Instances []serve.Status `json:"instances"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			results[i] = memberList{member: m, sts: body.Instances, err: err}
		}(i, m)
	}
	wg.Wait()

	rt.mu.Lock()
	out := make([]InstanceInfo, 0, len(rt.insts))
	for _, res := range results {
		for _, st := range res.sts {
			fid, ok := rt.rev[res.member][st.ID]
			if !ok {
				continue // created out-of-band, not federated
			}
			info := InstanceInfo{Status: st, Member: res.member, MemberID: st.ID}
			info.ID = fid
			out = append(out, info)
		}
	}
	rt.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, map[string]any{"instances": out})
}

func (rt *Router) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	fid := r.PathValue("id")
	p, ok := rt.lookup(fid)
	if !ok {
		apiError(w, http.StatusNotFound, "no instance %q", fid)
		return
	}
	resp, err := rt.memberDo("GET", p.member+"/api/v1/instances/"+p.localID, nil, "")
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", p.member, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		relay(w, resp)
		return
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", p.member, err)
		return
	}
	info := InstanceInfo{Status: st, Member: p.member, MemberID: st.ID}
	info.ID = fid
	writeJSON(w, http.StatusOK, info)
}

func (rt *Router) handleInstanceDelete(w http.ResponseWriter, r *http.Request) {
	fid := r.PathValue("id")
	p, ok := rt.lookup(fid)
	if !ok {
		apiError(w, http.StatusNotFound, "no instance %q", fid)
		return
	}
	resp, err := rt.memberDo("DELETE", p.member+"/api/v1/instances/"+p.localID, nil, "")
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", p.member, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
		rt.forget(fid)
	}
	relay(w, resp)
}

// handleInstanceProxy forwards any other instance sub-resource — load,
// slo, degrade, faults, checkpoint, SSE stream — to the hosting member
// with the member-local id spliced into the path.
func (rt *Router) handleInstanceProxy(w http.ResponseWriter, r *http.Request) {
	fid := r.PathValue("id")
	p, ok := rt.lookup(fid)
	if !ok {
		apiError(w, http.StatusNotFound, "no instance %q", fid)
		return
	}
	url := p.member + "/api/v1/instances/" + p.localID + "/" + r.PathValue("rest")
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	resp, err := rt.memberDo(r.Method, url, r.Body, r.Header.Get("Content-Type"))
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", p.member, err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

// --- Migration and rebalancing -----------------------------------------

// migrate moves one federated instance to the target member by asking
// the hosting daemon to peer-migrate, then repoints the mapping at the
// restored copy.
func (rt *Router) migrate(fid, target string) (*serve.MigrateResult, error) {
	p, ok := rt.lookup(fid)
	if !ok {
		return nil, fmt.Errorf("no instance %q", fid)
	}
	if p.member == target {
		return nil, fmt.Errorf("instance %q is already on %s", fid, target)
	}
	body, _ := json.Marshal(serve.MigrateRequest{Peer: target})
	resp, err := rt.memberDo("POST", p.member+"/api/v1/instances/"+p.localID+"/migrate", bytes.NewReader(body), "application/json")
	if err != nil {
		return nil, fmt.Errorf("member %s: %w", p.member, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("member %s refused the migration: %s: %s", p.member, resp.Status, strings.TrimSpace(string(msg)))
	}
	var res serve.MigrateResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("member %s: decoding migrate result: %w", p.member, err)
	}
	rt.repoint(fid, placement{member: target, localID: res.To})
	rt.migrations.Add(1)
	return &res, nil
}

func (rt *Router) handleInstanceMigrate(w http.ResponseWriter, r *http.Request) {
	fid := r.PathValue("id")
	var req FedMigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	target := strings.TrimSuffix(strings.TrimSpace(req.Member), "/")
	rt.mu.Lock()
	known := slicesContains(rt.members, target)
	rt.mu.Unlock()
	if !known {
		apiError(w, http.StatusBadRequest, "no member %q", target)
		return
	}
	res, err := rt.migrate(fid, target)
	if err != nil {
		apiError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// rebalanceOnto migrates every federated instance whose placement
// disagrees with the given table onto its hash home. Returns the number
// moved and the first error (the sweep keeps going on per-instance
// failures so one stuck instance cannot wedge a whole rebalance).
func (rt *Router) rebalanceOnto(table *chash.Table) (int, error) {
	rt.mu.Lock()
	type move struct{ fid, want string }
	var moves []move
	for fid, p := range rt.insts {
		if want := table.Place(fid); want != p.member {
			moves = append(moves, move{fid, want})
		}
	}
	rt.mu.Unlock()
	sort.Slice(moves, func(a, b int) bool { return moves[a].fid < moves[b].fid })
	moved := 0
	var firstErr error
	for _, m := range moves {
		if _, err := rt.migrate(m.fid, m.want); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("migrating %s: %w", m.fid, err)
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

func (rt *Router) handleRebalance(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	table := rt.table
	rt.mu.Unlock()
	moved, err := rt.rebalanceOnto(table)
	out := map[string]any{"moved": moved}
	if err != nil {
		out["error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// --- Membership --------------------------------------------------------

type memberRequest struct {
	URL string `json:"url"`
}

func (rt *Router) handleMembersList(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	counts := make(map[string]int)
	for _, p := range rt.insts {
		counts[p.member]++
	}
	type memberInfo struct {
		URL       string `json:"url"`
		Instances int    `json:"instances"`
	}
	out := make([]memberInfo, 0, len(rt.members))
	for _, m := range rt.members {
		out = append(out, memberInfo{URL: m, Instances: counts[m]})
	}
	seed := rt.seed
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"seed": seed, "members": out})
}

// handleMemberJoin adds a member to the hash population and rebalances
// the minimal set of instances — exactly those whose hash home moved to
// the joiner — onto it.
func (rt *Router) handleMemberJoin(w http.ResponseWriter, r *http.Request) {
	var req memberRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	url := strings.TrimSuffix(strings.TrimSpace(req.URL), "/")
	if url == "" {
		apiError(w, http.StatusBadRequest, "url must be set")
		return
	}
	rt.mu.Lock()
	if slicesContains(rt.members, url) {
		rt.mu.Unlock()
		apiError(w, http.StatusConflict, "member %q already joined", url)
		return
	}
	rt.table = rt.table.Add(url)
	rt.members = append(rt.members, url)
	sort.Strings(rt.members)
	table := rt.table
	rt.mu.Unlock()
	moved, err := rt.rebalanceOnto(table)
	out := map[string]any{"member": url, "moved": moved}
	if err != nil {
		out["error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMemberLeave migrates the member's instances onto their new hash
// homes, then drops it from the population.
func (rt *Router) handleMemberLeave(w http.ResponseWriter, r *http.Request) {
	var req memberRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	url := strings.TrimSuffix(strings.TrimSpace(req.URL), "/")
	rt.mu.Lock()
	if !slicesContains(rt.members, url) {
		rt.mu.Unlock()
		apiError(w, http.StatusNotFound, "no member %q", url)
		return
	}
	if len(rt.members) == 1 {
		rt.mu.Unlock()
		apiError(w, http.StatusConflict, "cannot remove the last member")
		return
	}
	rt.table = rt.table.Remove(url)
	for i, m := range rt.members {
		if m == url {
			rt.members = append(rt.members[:i], rt.members[i+1:]...)
			break
		}
	}
	table := rt.table
	rt.mu.Unlock()
	moved, err := rt.rebalanceOnto(table)
	out := map[string]any{"member": url, "moved": moved}
	if err != nil {
		out["error"] = err.Error()
		writeJSON(w, http.StatusBadGateway, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func slicesContains(list []string, v string) bool {
	for _, m := range list {
		if m == v {
			return true
		}
	}
	return false
}

// --- Jobs --------------------------------------------------------------

func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	rt.mu.Lock()
	rt.jobSeq++
	gid := rt.jobSeq
	member := rt.members[(gid-1)%len(rt.members)]
	rt.mu.Unlock()

	resp, err := rt.memberDo("POST", member+"/api/v1/jobs", bytes.NewReader(body), "application/json")
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", member, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		relay(w, resp)
		return
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		apiError(w, http.StatusBadGateway, "member %s: decoding job: %v", member, err)
		return
	}
	rt.mu.Lock()
	rt.jobs[gid] = jobRef{member: member, localID: st.ID}
	rt.mu.Unlock()
	st.ID = gid
	writeJSON(w, resp.StatusCode, st)
}

// jobDo proxies one job request by federated id, rewriting ids in both
// directions.
func (rt *Router) jobDo(w http.ResponseWriter, r *http.Request, method string) {
	var gid int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &gid); err != nil {
		apiError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	rt.mu.Lock()
	ref, ok := rt.jobs[gid]
	rt.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no job %d", gid)
		return
	}
	resp, err := rt.memberDo(method, fmt.Sprintf("%s/api/v1/jobs/%d", ref.member, ref.localID), nil, "")
	if err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", ref.member, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		relay(w, resp)
		return
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		apiError(w, http.StatusBadGateway, "member %s: %v", ref.member, err)
		return
	}
	st.ID = gid
	writeJSON(w, http.StatusOK, st)
}

func (rt *Router) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rt.jobDo(w, r, "GET")
}

func (rt *Router) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rt.jobDo(w, r, "DELETE")
}

func (rt *Router) handleJobsList(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	refs := make(map[int]jobRef, len(rt.jobs))
	for gid, ref := range rt.jobs {
		refs[gid] = ref
	}
	rt.mu.Unlock()
	// One list per member, then rewrite ids through the reverse mapping.
	byMember := make(map[string]map[int]serve.JobStatus)
	for _, m := range rt.Members() {
		resp, err := rt.memberDo("GET", m+"/api/v1/jobs", nil, "")
		if err != nil {
			continue
		}
		var body struct {
			Jobs []serve.JobStatus `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		byMember[m] = make(map[int]serve.JobStatus, len(body.Jobs))
		for _, st := range body.Jobs {
			byMember[m][st.ID] = st
		}
	}
	out := make([]serve.JobStatus, 0, len(refs))
	for gid, ref := range refs {
		st, ok := byMember[ref.member][ref.localID]
		if !ok {
			continue
		}
		st.ID = gid
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (rt *Router) handleSched(w http.ResponseWriter, _ *http.Request) {
	var parts []serve.SchedulerStatus
	for _, m := range rt.Members() {
		resp, err := rt.memberDo("GET", m+"/api/v1/scheduler", nil, "")
		if err != nil {
			continue
		}
		var st serve.SchedulerStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			continue
		}
		parts = append(parts, st)
	}
	if len(parts) == 0 {
		apiError(w, http.StatusBadGateway, "no member reachable")
		return
	}
	agg := serve.MergeSchedulerStatuses(parts)
	agg.Shards = parts
	writeJSON(w, http.StatusOK, agg)
}

// --- Aggregated health and metrics -------------------------------------

// snapshot polls every member's shard endpoint concurrently and builds
// the federation-wide view /healthz and /metrics render.
func (rt *Router) snapshot() Snapshot {
	members := rt.Members()
	snaps := make([]MemberSnapshot, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			snaps[i] = MemberSnapshot{Member: m}
			resp, err := rt.memberDo("GET", m+"/api/v1/shards", nil, "")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var body struct {
				Shards     []serve.ShardStatus `json:"shards"`
				Migrations int64               `json:"migrations"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
				return
			}
			snaps[i].Up = true
			snaps[i].Shards = body.Shards
			snaps[i].Migrations = body.Migrations
			for _, sh := range body.Shards {
				snaps[i].Instances += sh.Instances
			}
		}(i, m)
	}
	wg.Wait()
	return Snapshot{
		Members:    snaps,
		Migrations: rt.migrations.Load(),
		Proxied:    rt.proxied.Load(),
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := rt.snapshot()
	up, instances := 0, 0
	for _, m := range snap.Members {
		if m.Up {
			up++
		}
		instances += m.Instances
	}
	status := "ok"
	if up < len(snap.Members) {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"members":    len(snap.Members),
		"members_up": up,
		"instances":  instances,
		"migrations": snap.Migrations,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := rt.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Families emit in sorted name order, matching the member daemons'
	// own expositions.
	var buf bytes.Buffer
	WriteFedMetrics(&buf, snap)
	WriteProxyMetrics(&buf)
	io.WriteString(w, serve.SortFamilies(buf.String()))
}
