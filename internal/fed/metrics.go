package fed

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"heracles/internal/serve"
)

// MemberSnapshot is one member daemon's state as the router last saw it.
type MemberSnapshot struct {
	Member     string
	Up         bool
	Instances  int
	Shards     []serve.ShardStatus
	Migrations int64
}

// Snapshot is the federation-wide view one poll of the members yields;
// WriteFedMetrics renders it and /healthz summarises it.
type Snapshot struct {
	Members    []MemberSnapshot
	Migrations int64 // router-driven migrations
	Proxied    int64 // requests forwarded to members
}

// escapeLabel escapes a Prometheus label value.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func scalar(w io.Writer, name, typ, help, value string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
}

// WriteFedMetrics renders the federation exposition: member liveness and
// occupancy, per-member-per-shard depth, and the router's migration and
// proxy counters. It is a pure function of the snapshot so tests pin it
// without a live fleet.
func WriteFedMetrics(w io.Writer, snap Snapshot) {
	scalar(w, "heracles_fed_members", "gauge",
		"Member daemons in the federation.", strconv.Itoa(len(snap.Members)))

	fmt.Fprint(w, "# HELP heracles_fed_member_up 1 while the member daemon answers its shard endpoint.\n# TYPE heracles_fed_member_up gauge\n")
	for _, m := range snap.Members {
		up := 0
		if m.Up {
			up = 1
		}
		fmt.Fprintf(w, "heracles_fed_member_up{member=\"%s\"} %d\n", escapeLabel.Replace(m.Member), up)
	}

	fmt.Fprint(w, "# HELP heracles_fed_member_instances Live instances on the member.\n# TYPE heracles_fed_member_instances gauge\n")
	total := 0
	for _, m := range snap.Members {
		total += m.Instances
		fmt.Fprintf(w, "heracles_fed_member_instances{member=\"%s\"} %d\n", escapeLabel.Replace(m.Member), m.Instances)
	}

	scalar(w, "heracles_fed_instances", "gauge",
		"Live instances across every member.", strconv.Itoa(total))

	fmt.Fprint(w, "# HELP heracles_fed_shard_instances Live instances per member shard.\n# TYPE heracles_fed_shard_instances gauge\n")
	for _, m := range snap.Members {
		for _, sh := range m.Shards {
			fmt.Fprintf(w, "heracles_fed_shard_instances{member=\"%s\",shard=\"%d\"} %d\n",
				escapeLabel.Replace(m.Member), sh.Shard, sh.Instances)
		}
	}

	fmt.Fprint(w, "# HELP heracles_fed_shard_queue_depth Epoch-heap depth per member shard.\n# TYPE heracles_fed_shard_queue_depth gauge\n")
	for _, m := range snap.Members {
		for _, sh := range m.Shards {
			fmt.Fprintf(w, "heracles_fed_shard_queue_depth{member=\"%s\",shard=\"%d\"} %d\n",
				escapeLabel.Replace(m.Member), sh.Shard, sh.EpochSched.QueueDepth)
		}
	}

	scalar(w, "heracles_fed_migrations_total", "counter",
		"Cross-member migrations driven by this router.", strconv.FormatInt(snap.Migrations, 10))
	scalar(w, "heracles_fed_proxied_requests_total", "counter",
		"Requests this router forwarded to member daemons.", strconv.FormatInt(snap.Proxied, 10))
}

// proxyHist times every member request the router issues — proxied API
// calls, fan-out polls and migrations alike. Process-wide operational
// telemetry, reusing serve's hand-rolled histogram.
var proxyHist serve.Histogram

// WriteProxyMetrics renders the router's own proxy-latency histogram.
func WriteProxyMetrics(w io.Writer) {
	proxyHist.Write(w, "heracles_fed_proxy_duration_seconds",
		"Wall time of one request this router issued to a member daemon.")
}

// MetricNames lists every metric family the federation exposition can
// emit (the /metrics handler sorts families by name before writing). The
// docs check uses it to keep docs/API.md complete, and a test keeps it
// in lockstep with WriteFedMetrics and WriteProxyMetrics.
func MetricNames() []string {
	return []string{
		"heracles_fed_members",
		"heracles_fed_member_up",
		"heracles_fed_member_instances",
		"heracles_fed_instances",
		"heracles_fed_shard_instances",
		"heracles_fed_shard_queue_depth",
		"heracles_fed_migrations_total",
		"heracles_fed_proxied_requests_total",
		"heracles_fed_proxy_duration_seconds",
	}
}
