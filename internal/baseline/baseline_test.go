package baseline

import (
	"sync"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

var (
	setupOnce sync.Once
	lcWS      *workload.LC
	beBrain   *workload.BE
)

func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		cfg := hw.DefaultConfig()
		lcWS = machine.CalibrateLC(cfg, machine.SpecOf(workload.Websearch()))
		beBrain = machine.CalibrateBE(cfg, workload.Brain())
	})
}

func factory() *machine.Machine { return machine.New(hw.DefaultConfig()) }

func TestConservativeStaticNeverViolatesButWastes(t *testing.T) {
	setup(t)
	cfg := ConservativeStatic(36, 20)
	points := RunStatic(factory, lcWS, beBrain, cfg, []float64{0.2, 0.5, 0.8}, 2*time.Minute)
	for _, p := range points {
		if p.Violation {
			t.Fatalf("conservative static violated at load %v (%.0f%%)", p.Load, 100*p.TailFrac)
		}
	}
	// The price of safety: at low load most of the machine idles (§3.3:
	// "too conservative, missing opportunities for colocation").
	if points[0].EMU > 0.55 {
		t.Fatalf("conservative static EMU at 20%% load = %v; expected stranded capacity", points[0].EMU)
	}
}

func TestAggressiveStaticViolatesAtHighLoad(t *testing.T) {
	setup(t)
	cfg := AggressiveStatic(36, 20)
	points := RunStatic(factory, lcWS, beBrain, cfg, []float64{0.2, 0.8}, 2*time.Minute)
	if !points[1].Violation {
		t.Fatalf("aggressive static at 80%% load = %.0f%%: expected an SLO violation (§3.3: 'overly optimistic')",
			100*points[1].TailFrac)
	}
}

func TestApplyStaticConfiguresMachine(t *testing.T) {
	setup(t)
	m := factory()
	m.SetLC(lcWS)
	m.AddBE(beBrain, workload.PlaceDedicated)
	cfg := StaticConfig{BECores: 6, BEWays: 3, BENetGBs: 0.2, BEFreqGHz: 1.5}
	ApplyStatic(m, cfg)
	if m.BECoreCount() != 6 || m.BEWayCount() != 3 {
		t.Fatalf("static split not applied: cores=%d ways=%d", m.BECoreCount(), m.BEWayCount())
	}
	if m.BENetCeil() != 0.2 || m.BEFreqCap() != 1.5 {
		t.Fatalf("caps not applied: net=%v freq=%v", m.BENetCeil(), m.BEFreqCap())
	}
}

func TestStaticConfigsSane(t *testing.T) {
	c := ConservativeStatic(36, 20)
	a := AggressiveStatic(36, 20)
	if c.BECores >= a.BECores {
		t.Fatal("conservative config should grant fewer cores than aggressive")
	}
	if c.BEWays >= a.BEWays {
		t.Fatal("conservative config should grant fewer ways than aggressive")
	}
}
