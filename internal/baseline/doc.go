// Package baseline implements the comparison policies Heracles is
// evaluated against:
//
//   - OS-only isolation (CFS shares, no pinning, no CAT/DVFS/HTB) — the
//     "brain" rows of Figure 1, realised through the machine model's
//     OS-shared placement.
//   - Static partitioning — a fixed, load-oblivious split of cores and
//     cache, representing the "any static policy would be either too
//     conservative or overly optimistic" argument of §3.3.
//   - Energy proportionality — the power-management-only alternative of
//     the §5.3 TCO comparison (implemented analytically in
//     internal/tco).
//
// The experiment, cluster and fleet layers run these policies on the
// same machines and scenarios as the controller, so every Heracles
// number in the evaluation has its counterfactual.
package baseline
