package baseline

import (
	"time"

	"heracles/internal/machine"
	"heracles/internal/workload"
)

// StaticConfig fixes a resource split for the static-partitioning policy.
type StaticConfig struct {
	BECores int // cores permanently granted to BE tasks
	BEWays  int // LLC ways permanently granted to BE tasks
	// BENetGBs is a permanent HTB ceiling for BE traffic (0 = uncapped).
	BENetGBs float64
	// BEFreqGHz is a permanent DVFS cap for BE cores (0 = uncapped).
	BEFreqGHz float64
}

// ConservativeStatic returns a static split that protects the LC workload
// at peak load — and therefore wastes most of the machine at low load.
func ConservativeStatic(totalCores, totalWays int) StaticConfig {
	return StaticConfig{
		BECores:   totalCores / 8,
		BEWays:    totalWays / 10,
		BENetGBs:  0.05,
		BEFreqGHz: 1.2,
	}
}

// AggressiveStatic returns a static split sized for low-load operation —
// which violates SLOs as soon as load rises.
func AggressiveStatic(totalCores, totalWays int) StaticConfig {
	return StaticConfig{
		BECores: totalCores * 2 / 3,
		BEWays:  totalWays / 2,
	}
}

// ApplyStatic configures a machine with the static split. Unlike Heracles,
// nothing ever re-adjusts it.
func ApplyStatic(m *machine.Machine, cfg StaticConfig) {
	m.Partition(cfg.BECores)
	m.PartitionWays(cfg.BEWays)
	if cfg.BENetGBs > 0 {
		m.SetBENetCeil(cfg.BENetGBs)
	}
	if cfg.BEFreqGHz > 0 {
		m.SetBEFreqCap(cfg.BEFreqGHz)
	}
}

// StaticPoint is one measured load point under a static policy.
type StaticPoint struct {
	Load      float64
	TailFrac  float64 // mean tail latency / SLO
	EMU       float64
	Violation bool
}

// RunStatic sweeps a static partitioning policy over the given loads.
func RunStatic(hwm machineFactory, lc *workload.LC, be *workload.BE,
	cfg StaticConfig, loads []float64, dur time.Duration) []StaticPoint {
	var out []StaticPoint
	for _, load := range loads {
		m := hwm()
		m.SetLC(lc)
		m.AddBE(be, workload.PlaceDedicated)
		ApplyStatic(m, cfg)
		m.SetLoad(load)
		epochs := int(dur / m.Epoch())
		if epochs < 8 {
			epochs = 8
		}
		var tailSum, emuSum float64
		n := 0
		for i := 0; i < epochs; i++ {
			t := m.Step()
			if i < epochs/4 {
				continue
			}
			tailSum += t.TailLatency.Seconds() / lc.SLO.Seconds()
			emuSum += t.EMU
			n++
		}
		p := StaticPoint{
			Load:     load,
			TailFrac: tailSum / float64(n),
			EMU:      emuSum / float64(n),
		}
		p.Violation = p.TailFrac > 1
		out = append(out, p)
	}
	return out
}

// machineFactory builds a fresh machine per load point.
type machineFactory func() *machine.Machine
