# Heracles reproduction — build, verify and performance-trajectory targets.

GO ?= go

.PHONY: all build vet test bench bench-smoke bench-baseline fmt-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Full benchmark suite (prints every figure/table on the first iteration).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke used by CI: exercises every artefact generator once.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

# Emit BENCH_baseline.json (ns/op, allocs/op per figure) to track the
# performance trajectory across PRs.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -out BENCH_baseline.json

ci: build vet fmt-check test bench-smoke
