# Heracles reproduction — build, verify and performance-trajectory targets.

GO ?= go

.PHONY: all build vet test test-race chaos churn fuzz-smoke bench bench-smoke bench-baseline bench-check fmt-check docs-check slo ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# -shuffle=on randomises test order within each package, surfacing
# order-dependent tests before they calcify.
test:
	$(GO) test -shuffle=on ./...

# Documentation gate: intra-repo markdown links resolve, every internal/
# package carries a package comment, and docs/API.md covers every
# registered control-plane route.
docs-check:
	$(GO) run ./cmd/docscheck

# Race-detector pass over the short suite: the parallel sweeps, the
# cluster/fleet fan-outs and the worker pools all run under -race.
test-race:
	$(GO) test -race -short ./...

# Chaos soak under -race: >= 20 injected faults (driver panics, leaf
# crashes, telemetry blackouts, slowdowns) against a live control plane
# with jobs in flight — every instance must restart from checkpoint and
# the scheduler's goodput ledger must balance. The fault determinism
# and supervisor unit tests ride along.
chaos:
	$(GO) test -race -run 'Chaos|Quarantine|DriverPanic|Fault|Stale|Kill|Generate|Validate|KindNames' \
		./internal/fault/ ./internal/core/ ./internal/sched/ \
		./internal/engine/ ./internal/serve/

# Registry churn and leak detection under -race: concurrent
# create/crash/delete churn against the shared epoch scheduler —
# goroutines, heap and the scheduler queue must return to baseline.
churn:
	$(GO) test -race -run 'RegistryChurnNoLeaks|EpochScheduler|HundredThousand' ./internal/serve/

# Short fuzz pass over the checkpoint envelope decoder: truncated,
# bit-flipped and CRC-mismatched inputs must error — never panic — and
# the rotated-generation fallback must always recover. The committed
# seed corpus under internal/serve/testdata/fuzz rides along.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeCheckpointFile$$' -fuzztime 10s ./internal/serve/

# Error-budget acceptance: the burn-rate admission gate must beat the
# instantaneous controller on monthly budget spent at equal-or-better
# goodput under the flash-crowd scenario, and the alert ladders must stay
# bit-identical across worker counts, shards, migration and
# checkpoint/restore.
slo:
	$(GO) test -run 'SLO|Budget|AlertHysteresis|BudgetSpendMonotone|WindowRollOff' \
		./internal/slo/ ./internal/engine/ ./internal/cluster/ ./internal/serve/

# Full benchmark suite (prints every figure/table on the first iteration).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke used by CI: exercises every artefact generator once.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

# Emit BENCH_baseline.json (ns/op, allocs/op per figure) to track the
# performance trajectory across PRs.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -out BENCH_baseline.json

# Compare a fresh quick run against the committed baseline; fails on
# regressions beyond the tolerance band (see cmd/benchbaseline -check).
# The wide ns/op band absorbs hardware differences from the reference
# machine that produced the baseline; allocs are held tight everywhere.
bench-check:
	$(GO) run ./cmd/benchbaseline -quick -check BENCH_baseline.json -tol 1.5

ci: build vet fmt-check docs-check test test-race chaos churn fuzz-smoke bench-smoke bench-check
