module heracles

go 1.22
