// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark prints the rows/series the paper reports (on
// the first iteration) and measures the cost of regenerating the artefact.
//
//	go test -bench=. -benchmem
//
// Figure index (see DESIGN.md §4): Figure 1 (interference
// characterisation), Figure 3 (cores x LLC surface), Figure 4 (latency
// under Heracles), Figure 5 (EMU), Figure 6 (shared-resource utilisation),
// Figure 7 (memkeyval network bandwidth), Figure 8 (cluster diurnal run),
// and the §5.3 TCO analysis; plus ablations and component
// micro-benchmarks.
package heracles_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"heracles"
	"heracles/internal/baseline"
	"heracles/internal/cache"
	"heracles/internal/core"
	"heracles/internal/experiment"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiment.Lab
)

func lab() *experiment.Lab {
	benchLabOnce.Do(func() { benchLab = experiment.DefaultLab() })
	return benchLab
}

// benchLoads is a reduced 10-point grid; pass -benchtime with the full
// experiment binaries (cmd/characterize, cmd/colocate) for the 19-point
// version.
func benchLoads() []float64 {
	return []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
}

func colocOpts() experiment.RunOpts {
	return experiment.RunOpts{
		Duration:     10 * time.Minute,
		Warmup:       2 * time.Minute,
		UseDRAMModel: true,
	}
}

// BenchmarkFigure1 regenerates the three interference characterisation
// tables (websearch, ml_cluster, memkeyval x 8 antagonists x load).
func BenchmarkFigure1(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"websearch", "ml_cluster", "memkeyval"} {
			t := l.Figure1(name, benchLoads())
			if i == 0 {
				fmt.Println(t)
			}
		}
	}
}

// BenchmarkFigure3 regenerates the websearch max-load-under-SLO surface
// over the cores x LLC plane, whose convexity justifies gradient descent.
func BenchmarkFigure3(b *testing.B) {
	l := lab()
	fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for i := 0; i < b.N; i++ {
		s := l.Figure3("websearch", fracs, fracs)
		if i == 0 {
			fmt.Println(s)
			fmt.Printf("convexity violations (tol 5%%): %d\n\n", s.ConvexViolations(0.05))
		}
	}
}

// BenchmarkFigure4 regenerates the latency series of Figure 4: each LC
// workload colocated with every BE job under Heracles, across load, with
// the baseline series for comparison. The assertion of the figure — no
// SLO violations anywhere — is checked.
func BenchmarkFigure4(b *testing.B) {
	l := lab()
	bes := []string{"stream-LLC", "stream-DRAM", "cpu_pwr", "brain", "streetview", "iperf"}
	for i := 0; i < b.N; i++ {
		for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
			if i == 0 {
				fmt.Println(l.Baseline(lc, benchLoads(), colocOpts()))
			}
			for _, be := range bes {
				s := l.Colocate(lc, be, benchLoads(), colocOpts())
				if i == 0 {
					fmt.Println(s)
					if v := s.Violations(); len(v) > 0 {
						fmt.Printf("!! SLO violations at %v\n", v)
					}
				}
			}
		}
	}
}

// BenchmarkFigure5 regenerates the EMU series of Figure 5 (production BE
// workloads brain and streetview against all three LC workloads).
func BenchmarkFigure5(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("Effective machine utilisation (Figure 5)\n%6s", "load")
			for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
				for _, be := range []string{"brain", "streetview"} {
					fmt.Printf(" %14s", lc[:4]+"+"+be[:5])
				}
			}
			fmt.Println()
		}
		series := make([]experiment.Series, 0, 6)
		for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
			for _, be := range []string{"brain", "streetview"} {
				series = append(series, l.Colocate(lc, be, benchLoads(), colocOpts()))
			}
		}
		if i == 0 {
			for pi, load := range benchLoads() {
				fmt.Printf("%5.0f%%", load*100)
				for _, s := range series {
					fmt.Printf(" %13.1f%%", 100*s.Points[pi].EMU)
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
}

// BenchmarkFigure6 regenerates the shared-resource utilisation grid of
// Figure 6: DRAM bandwidth, CPU utilisation and CPU power for each LC
// workload colocated with each BE job.
func BenchmarkFigure6(b *testing.B) {
	l := lab()
	bes := []string{"stream-LLC", "stream-DRAM", "cpu_pwr", "brain", "streetview"}
	loads := []float64{0.2, 0.4, 0.6, 0.8}
	for i := 0; i < b.N; i++ {
		for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
			for _, be := range bes {
				s := l.Colocate(lc, be, loads, colocOpts())
				if i == 0 {
					fmt.Printf("%s + %s (Figure 6 metrics)\n", lc, be)
					fmt.Printf("%6s %9s %9s %9s\n", "load", "DRAM BW", "CPU util", "CPU power")
					for _, p := range s.Points {
						fmt.Printf("%5.0f%% %8.1f%% %8.1f%% %8.1f%%\n",
							p.Load*100, 100*p.DRAMUtil, 100*p.CPUUtil, 100*p.PowerFrac)
					}
					fmt.Println()
				}
			}
		}
	}
}

// BenchmarkFigure7 regenerates the memkeyval network bandwidth series of
// Figure 7 (baseline vs colocated with iperf under HTB control).
func BenchmarkFigure7(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		base := l.Baseline("memkeyval", benchLoads(), colocOpts())
		with := l.Colocate("memkeyval", "iperf", benchLoads(), colocOpts())
		if i == 0 {
			fmt.Printf("memkeyval network BW (Figure 7)\n%6s %16s %26s\n",
				"load", "baseline LC BW", "with iperf (LC + BE) BW")
			for pi := range base.Points {
				bp, wp := base.Points[pi], with.Points[pi]
				fmt.Printf("%5.0f%% %13.0f%% %12.0f%% + %6.0f%% of link\n",
					bp.Load*100, 100*bp.LCNetGBs/1.25, 100*wp.LCNetGBs/1.25, 100*wp.BENetGBs/1.25)
			}
			if v := with.Violations(); len(v) > 0 {
				fmt.Printf("!! SLO violations at %v\n", v)
			}
			fmt.Println()
		}
	}
}

// BenchmarkFigure8 regenerates the cluster experiment (latency and EMU
// over a diurnal trace, baseline vs Heracles). The benchmark uses a
// shortened trace; cmd/cluster runs the full 12 hours.
func BenchmarkFigure8(b *testing.B) {
	l := lab()
	tr := heracles.DiurnalTrace(heracles.DiurnalConfig{
		Duration: 90 * time.Minute,
		Step:     time.Second,
		Seed:     42,
	})
	for i := 0; i < b.N; i++ {
		for _, mode := range []bool{false, true} {
			cfg := heracles.ClusterConfig{
				Leaves: 8, Heracles: mode, HW: l.Cfg,
				LC: l.LC("websearch"), Brain: l.BE("brain"), SView: l.BE("streetview"),
				Seed: 42, Model: l.DRAMModel("websearch"),
			}
			res := heracles.RunCluster(cfg, tr)
			if i == 0 {
				s := res.Summarize()
				name := "baseline"
				if mode {
					name = "heracles"
				}
				fmt.Printf("Figure 8 %-8s: meanEMU=%5.1f%% latency mean/worst-window = %4.1f%%/%4.1f%% of SLO, violations=%d\n",
					name, 100*s.MeanEMU, 100*s.MeanRootFrac, 100*s.MaxRootFrac, s.Violations)
			}
		}
		if i == 0 {
			fmt.Println()
		}
	}
}

// BenchmarkTCO regenerates the §5.3 throughput/TCO analysis.
func BenchmarkTCO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := heracles.AnalyzeTCO(heracles.BarrosoTCO())
		if i == 0 {
			fmt.Println("Throughput/TCO analysis (§5.3)")
			for _, c := range cs {
				fmt.Printf("util %3.0f%% -> %2.0f%%: heracles %+7.1f%%  energy-proportionality %+6.1f%%\n",
					100*c.BaseUtil, 100*c.TargetUtil, 100*c.HeraclesGain, 100*c.EnergyGain)
			}
			fmt.Println()
		}
	}
}

// BenchmarkAblationNoDRAMModel measures the controller without the §4.2
// offline DRAM model (counter-subtraction fallback): the paper argues
// hardware bandwidth accounting would remove the offline requirement.
func BenchmarkAblationNoDRAMModel(b *testing.B) {
	l := lab()
	loads := []float64{0.2, 0.5, 0.7}
	for i := 0; i < b.N; i++ {
		opts := colocOpts()
		opts.UseDRAMModel = false
		s := l.Colocate("websearch", "streetview", loads, opts)
		if i == 0 {
			fmt.Printf("Ablation: no offline DRAM model -> violations=%d meanEMU=%.1f%%\n",
				len(s.Violations()), 100*s.MeanEMU())
		}
	}
}

// BenchmarkAblationStaticPartitioning measures the static-allocation
// alternative the paper rejects (§3.3): conservative splits strand
// capacity, aggressive splits violate SLOs.
func BenchmarkAblationStaticPartitioning(b *testing.B) {
	l := lab()
	lc := l.LC("websearch")
	be := l.BE("brain")
	factory := func() *machine.Machine { return machine.New(l.Cfg) }
	loads := []float64{0.2, 0.5, 0.8}
	for i := 0; i < b.N; i++ {
		cons := baseline.RunStatic(factory, lc, be, baseline.ConservativeStatic(36, 20), loads, 3*time.Minute)
		aggr := baseline.RunStatic(factory, lc, be, baseline.AggressiveStatic(36, 20), loads, 3*time.Minute)
		if i == 0 {
			fmt.Println("Ablation: static partitioning (load, tail%%SLO, EMU)")
			for j := range cons {
				fmt.Printf("load %3.0f%%: conservative %5.1f%% / EMU %5.1f%%   aggressive %6.1f%% / EMU %5.1f%%\n",
					100*cons[j].Load, 100*cons[j].TailFrac, 100*cons[j].EMU,
					100*aggr[j].TailFrac, 100*aggr[j].EMU)
			}
			fmt.Println()
		}
	}
}

// BenchmarkAblationEngines cross-checks the analytic and DES latency
// engines on the same colocation scenario.
func BenchmarkAblationEngines(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		for _, eng := range []struct {
			name string
			e    lat.Engine
		}{{"analytic", lat.Analytic{}}, {"des", lat.NewDES(1)}} {
			m := machine.New(l.Cfg, machine.WithEngine(eng.e))
			m.SetLC(l.LC("websearch"))
			m.AddBE(l.BE("brain"), workload.PlaceDedicated)
			m.SetLoad(0.4)
			ctl := core.New(m, nil, core.DefaultConfig())
			var tel machine.Telemetry
			for s := 0; s < 480; s++ {
				tel = m.Step()
				ctl.Step(m.Clock().Now())
			}
			if i == 0 {
				fmt.Printf("Ablation engines: %-8s tail=%5.1f%%SLO EMU=%5.1f%%\n",
					eng.name, 100*tel.TailLatency.Seconds()/l.LC("websearch").SLO.Seconds(), 100*tel.EMU)
			}
		}
		if i == 0 {
			fmt.Println()
		}
	}
}

// --- Component micro-benchmarks -----------------------------------------

// BenchmarkMachineStep measures one steady-state control epoch. The
// telemetry ring (600 epochs) is filled before timing starts, so the
// benchmark reports the true steady state: 0 allocs/op.
func BenchmarkMachineStep(b *testing.B) {
	l := lab()
	m := machine.New(l.Cfg)
	m.SetLC(l.LC("websearch"))
	m.AddBE(l.BE("brain"), workload.PlaceDedicated)
	m.SetLoad(0.5)
	m.Partition(12)
	for i := 0; i < 620; i++ {
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkColocateSweep measures one full 10-point Colocate sweep with
// the worker pool (workers=0, GOMAXPROCS) against the forced-sequential
// reference (workers=1). On a multi-core host the parallel variant is
// expected to approach a min(points, cores)-fold speedup with byte-
// identical Series output (asserted by TestParallelColocateMatchesSequential).
func BenchmarkColocateSweep(b *testing.B) {
	l := lab()
	opts := colocOpts()
	l.Colocate("websearch", "brain", benchLoads(), opts) // warm calibration caches
	for _, bench := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			o := opts
			o.Workers = bench.workers
			for i := 0; i < b.N; i++ {
				l.Colocate("websearch", "brain", benchLoads(), o)
			}
		})
	}
}

func BenchmarkControllerStep(b *testing.B) {
	l := lab()
	m := machine.New(l.Cfg)
	m.SetLC(l.LC("websearch"))
	m.AddBE(l.BE("brain"), workload.PlaceDedicated)
	m.SetLoad(0.5)
	ctl := core.New(m, l.DRAMModel("websearch"), core.DefaultConfig())
	m.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Step(time.Duration(i) * time.Second)
	}
}

func BenchmarkCacheSolver(b *testing.B) {
	s := cache.Solver{WayMB: 2.25, Ways: 20}
	demands := []cache.Demand{
		{AccessRate: 1e9, Components: workload.Websearch().CacheComponents, WayMask: cache.MaskOfWays(2, 18), LoadScale: 1},
		{AccessRate: 2e9, Components: workload.Brain().CacheComponents, WayMask: cache.MaskOfWays(0, 2)},
	}
	var sc cache.Scratch
	s.ResolveScratch(&sc, demands) // grow scratch to its high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResolveScratch(&sc, demands)
	}
}

func BenchmarkFrequencyResolution(b *testing.B) {
	cfg := hw.DefaultConfig()
	loads := make([]hw.CoreLoad, cfg.CoresPerSocket)
	for i := range loads {
		loads[i] = hw.CoreLoad{Activity: 0.9}
		if i%3 == 0 {
			loads[i].CapGHz = 1.8
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.ResolveFrequencies(loads)
	}
}

func BenchmarkDESEpoch(b *testing.B) {
	d := lat.NewDES(1)
	p := lat.ServiceParams{Mean: 10 * time.Millisecond, Sigma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Epoch(p, 2000, 36, time.Second)
	}
}

func BenchmarkAnalyticEpoch(b *testing.B) {
	var e lat.Analytic
	p := lat.ServiceParams{Mean: 10 * time.Millisecond, Sigma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Epoch(p, 2000, 36, time.Second)
	}
}
