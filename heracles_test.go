package heracles_test

import (
	"testing"
	"time"

	"heracles"
)

func TestPublicAPIQuickstart(t *testing.T) {
	lab := heracles.NewLab(heracles.DefaultHardware())
	s := lab.Colocate("websearch", "brain", []float64{0.4},
		heracles.RunOpts{Duration: 6 * time.Minute, Warmup: 2 * time.Minute})
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].SLOViolation {
		t.Fatal("quickstart scenario violated the SLO")
	}
	if s.Points[0].EMU <= 0.45 {
		t.Fatalf("EMU = %v, want colocation benefit", s.Points[0].EMU)
	}
}

func TestPublicAPIManualControlLoop(t *testing.T) {
	hwCfg := heracles.DefaultHardware()
	lc := heracles.CalibrateLC(hwCfg, heracles.SpecOf(heracles.Websearch()))
	be := heracles.CalibrateBE(hwCfg, heracles.Streetview())

	m := heracles.NewMachine(hwCfg)
	m.SetLC(lc)
	m.AddBE(be, heracles.PlaceDedicated)
	m.SetLoad(0.3)

	ctl := heracles.NewController(m, nil, heracles.DefaultControllerConfig())
	for i := 0; i < 300; i++ {
		m.Step()
		ctl.Step(m.Clock().Now())
	}
	tel := m.Last()
	if tel.TailLatency > lc.SLO {
		t.Fatalf("tail %v exceeds SLO %v", tel.TailLatency, lc.SLO)
	}
	if tel.EMU < 0.5 {
		t.Fatalf("EMU = %v", tel.EMU)
	}
}

func TestPublicAPITCO(t *testing.T) {
	cs := heracles.AnalyzeTCO(heracles.BarrosoTCO())
	if len(cs) != 2 {
		t.Fatalf("scenarios = %d", len(cs))
	}
	if cs[0].HeraclesGain < 0.1 {
		t.Fatalf("75%%->90%% gain = %v", cs[0].HeraclesGain)
	}
}

func TestPublicAPIDESEngine(t *testing.T) {
	hwCfg := heracles.DefaultHardware()
	lc := heracles.CalibrateLC(hwCfg, heracles.SpecOf(heracles.MLCluster()))
	m := heracles.NewMachine(hwCfg, heracles.WithEngine(heracles.NewDES(1)))
	m.SetLC(lc)
	m.SetLoad(0.5)
	var tel heracles.Telemetry
	for i := 0; i < 10; i++ {
		tel = m.Step()
	}
	if tel.TailLatency <= 0 || tel.TailLatency > lc.SLO {
		t.Fatalf("DES tail = %v (SLO %v)", tel.TailLatency, lc.SLO)
	}
}
