// Command cluster runs the websearch minicluster experiment of §5.3
// (Figure 8): a fan-out cluster replaying a 12-hour diurnal trace, with
// Heracles colocating brain on half of the leaves and streetview on the
// other half, compared against the no-colocation baseline.
//
// Usage:
//
//	cluster [-leaves 20] [-hours 12] [-step 1s] [-seed 42] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"heracles/internal/cluster"
	"heracles/internal/experiment"
	"heracles/internal/trace"
)

func main() {
	leaves := flag.Int("leaves", 20, "number of leaf servers")
	hours := flag.Float64("hours", 12, "trace duration in hours")
	step := flag.Duration("step", time.Second, "trace step")
	seed := flag.Uint64("seed", 42, "random seed (drives the trace and root fan-out sampling)")
	workers := flag.Int("workers", 0, "concurrent leaves per epoch (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	lab := experiment.DefaultLab()
	tr := trace.Diurnal(trace.DiurnalConfig{
		Duration: time.Duration(*hours * float64(time.Hour)),
		Step:     *step,
		Seed:     *seed,
	})

	for _, heraclesOn := range []bool{false, true} {
		cfg := cluster.Config{
			Leaves:   *leaves,
			Heracles: heraclesOn,
			HW:       lab.Cfg,
			LC:       lab.LC("websearch"),
			Brain:    lab.BE("brain"),
			SView:    lab.BE("streetview"),
			Seed:     *seed,
			Model:    lab.DRAMModel("websearch"),
			Workers:  *workers,
		}
		res := cluster.Run(cfg, tr)
		s := res.Summarize()
		mode := "baseline"
		if heraclesOn {
			mode = "heracles"
		}
		fmt.Printf("%-8s  SLO(µ/30s)=%v  meanEMU=%5.1f%%  minEMU=%5.1f%%  meanLatency=%5.1f%%SLO  maxWindow=%5.1f%%SLO  violations=%d\n",
			mode, s.SLO.Round(time.Microsecond), 100*s.MeanEMU, 100*s.MinEMU,
			100*s.MeanRootFrac, 100*s.MaxRootFrac, s.Violations)
	}
}
