// Command cluster runs the websearch minicluster experiment of §5.3
// (Figure 8): a fan-out cluster replaying a 12-hour diurnal trace, with
// Heracles colocating brain on half of the leaves and streetview on the
// other half, compared against the no-colocation baseline.
//
// -checkpoint snapshots the Heracles run's full simulation state to a
// file once the simulated clock reaches -checkpoint-at; -resume restores
// such a file and replays only the remaining epochs of the Heracles run
// (the baseline arm is skipped), continuing bit-identically to an
// uninterrupted run. A resumed run must use the same flags (leaves,
// hours, step, seed) as the run that wrote the checkpoint: the scenario
// is regenerated from them, while the checkpoint carries the state.
//
// The fault flags inject a deterministic failure schedule (leaf crashes,
// telemetry blackouts, slow machines, actuation failures, BE kills) that
// both arms replay identically, so the baseline/Heracles comparison
// isolates the controller's resilience; see internal/fault.
//
// Usage:
//
//	cluster [-leaves 20] [-hours 12] [-step 1s] [-seed 42] [-workers 0]
//	        [-checkpoint ckpt.json -checkpoint-at 6h] [-resume ckpt.json]
//	        [-crashes N] [-blackouts N] [-slowdowns N] [-actfails N]
//	        [-bekills N] [-fault-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"heracles/internal/cluster"
	"heracles/internal/engine"
	"heracles/internal/experiment"
	"heracles/internal/fault"
	"heracles/internal/scenario"
	"heracles/internal/trace"
)

func main() {
	leaves := flag.Int("leaves", 20, "number of leaf servers")
	hours := flag.Float64("hours", 12, "trace duration in hours")
	step := flag.Duration("step", time.Second, "trace step")
	seed := flag.Uint64("seed", 42, "random seed (drives the trace and root fan-out sampling)")
	workers := flag.Int("workers", 0, "concurrent leaves per epoch (0 = GOMAXPROCS, 1 = sequential)")
	ckptPath := flag.String("checkpoint", "", "write a simulation checkpoint of the Heracles run to this file")
	ckptAt := flag.Duration("checkpoint-at", 6*time.Hour, "simulated time at which -checkpoint snapshots")
	resume := flag.String("resume", "", "resume the Heracles run from this checkpoint file (skips the baseline arm)")
	crashes := flag.Int("crashes", 0, "leaf crashes to inject over the run (deterministic schedule from -fault-seed)")
	blackouts := flag.Int("blackouts", 0, "telemetry blackouts to inject")
	slowdowns := flag.Int("slowdowns", 0, "slow-machine episodes to inject")
	actfails := flag.Int("actfails", 0, "actuation failures to inject")
	bekills := flag.Int("bekills", 0, "BE-task kills to inject")
	faultSeed := flag.Uint64("fault-seed", 0, "seed of the injected fault schedule (0 = use -seed)")
	flag.Parse()

	lab := experiment.DefaultLab()
	tr := trace.Diurnal(trace.DiurnalConfig{
		Duration: time.Duration(*hours * float64(time.Hour)),
		Step:     *step,
		Seed:     *seed,
	})

	// The fault schedule is generated once and shared by both arms, so the
	// baseline and Heracles runs absorb the identical failure history and
	// the comparison isolates the controller.
	var faults []fault.Fault
	if *crashes+*blackouts+*slowdowns+*actfails+*bekills > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		plan := fault.Generate(fault.GenConfig{
			Seed:           fs,
			Nodes:          *leaves,
			Horizon:        time.Duration(*hours * float64(time.Hour)),
			Crashes:        *crashes,
			Blackouts:      *blackouts,
			Slowdowns:      *slowdowns,
			ActuationFails: *actfails,
			BEKills:        *bekills,
		})
		faults = plan.Faults
		fmt.Printf("injecting %d fault(s) (seed %d)\n", len(faults), fs)
	}

	baseCfg := func(heraclesOn bool) cluster.Config {
		return cluster.Config{
			Leaves:   *leaves,
			Heracles: heraclesOn,
			HW:       lab.Cfg,
			LC:       lab.LC("websearch"),
			Brain:    lab.BE("brain"),
			SView:    lab.BE("streetview"),
			Seed:     *seed,
			Model:    lab.DRAMModel("websearch"),
			Workers:  *workers,
			Faults:   faults,
		}
	}
	report := func(mode string, s cluster.Summary) {
		fmt.Printf("%-8s  SLO(µ/30s)=%v  meanEMU=%5.1f%%  minEMU=%5.1f%%  meanLatency=%5.1f%%SLO  maxWindow=%5.1f%%SLO  violations=%d",
			mode, s.SLO.Round(time.Microsecond), 100*s.MeanEMU, 100*s.MinEMU,
			100*s.MeanRootFrac, 100*s.MaxRootFrac, s.Violations)
		if s.DownEpochs > 0 {
			fmt.Printf("  downEpochs=%d maxDown=%d", s.DownEpochs, s.MaxDown)
		}
		fmt.Println()
	}

	if *resume != "" {
		cp, err := engine.ReadFile(*resume)
		if err != nil {
			log.Fatalf("cluster: reading checkpoint: %v", err)
		}
		res, err := cluster.RunScenarioFrom(baseCfg(true), scenario.FromTrace("trace", tr), cp)
		if err != nil {
			log.Fatalf("cluster: resuming: %v", err)
		}
		fmt.Printf("resumed at t=%v (%d epochs remained)\n",
			cp.Now.Round(time.Second), len(res.Epochs))
		report("heracles", res.Summarize())
		return
	}

	for _, heraclesOn := range []bool{false, true} {
		cfg := baseCfg(heraclesOn)
		mode := "baseline"
		if heraclesOn {
			mode = "heracles"
			if *ckptPath != "" {
				cfg.CheckpointAt = *ckptAt
				cfg.OnCheckpoint = func(cp *engine.Checkpoint) {
					if err := cp.WriteFile(*ckptPath); err != nil {
						log.Fatalf("cluster: writing checkpoint: %v", err)
					}
					fmt.Printf("checkpoint written to %s at t=%v\n", *ckptPath, cp.Now.Round(time.Second))
				}
			}
		}
		res := cluster.Run(cfg, tr)
		report(mode, res.Summarize())
	}
}
