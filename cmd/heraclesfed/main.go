// Command heraclesfed fronts a fleet of heraclesd daemons with one
// federated control plane: instance creates are placed on members by
// consistent hashing, reads and actuation proxy through to the hosting
// daemon, jobs fan out round-robin, and /healthz and /metrics aggregate
// the whole federation. Migration between members rides the daemons'
// checkpoint/restore migration primitive.
//
//	heraclesd -addr :8080 -noboot &
//	heraclesd -addr :8081 -noboot &
//	heraclesfed -addr :8070 -members http://localhost:8080,http://localhost:8081
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"heracles/internal/debughttp"
	"heracles/internal/fed"
)

func main() {
	addr := flag.String("addr", ":8070", "HTTP listen address for the federation router")
	members := flag.String("members", "", "comma-separated base URLs of member heraclesd daemons (required)")
	seed := flag.Uint64("seed", 0, "consistent-hash placement seed (0 = built-in default)")
	pprofAddr := flag.String("pprof-addr", "", "separate listen address for pprof profiles and Go runtime metrics (empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		dbg, err := debughttp.Start(*pprofAddr)
		if err != nil {
			log.Fatalf("heraclesfed: %v", err)
		}
		defer dbg.Close()
		log.Printf("heraclesfed: profiling listener on %s (/debug/pprof, runtime /metrics)", dbg.Addr)
	}

	var urls []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			urls = append(urls, m)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "heraclesfed: -members is required (comma-separated daemon base URLs)")
		flag.Usage()
		os.Exit(2)
	}

	router, err := fed.NewRouter(fed.Config{Members: urls, Seed: *seed})
	if err != nil {
		log.Fatalf("heraclesfed: %v", err)
	}
	log.Printf("heraclesfed: routing %d members on %s", len(urls), *addr)
	log.Fatal(http.ListenAndServe(*addr, router.Handler()))
}
