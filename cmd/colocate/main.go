// Command colocate runs the single-server Heracles evaluation (Figures
// 4-7): one LC workload colocated with one BE task across a load sweep
// under controller management, reporting worst-case windowed tail latency,
// EMU and shared-resource utilisation.
//
// Usage:
//
//	colocate [-lc websearch] [-be all] [-minutes 12] [-model] [-loads 10]
//	         [-workers 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"heracles/internal/experiment"
)

func main() {
	lcName := flag.String("lc", "websearch", "latency-critical workload name")
	beName := flag.String("be", "all", "best-effort workload name (or all)")
	minutes := flag.Int("minutes", 12, "simulated minutes per load point")
	useModel := flag.Bool("model", true, "use the offline DRAM bandwidth model (§4.2)")
	nloads := flag.Int("loads", 10, "number of load points")
	workers := flag.Int("workers", 0, "concurrent load points (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	lab := experiment.DefaultLab()
	lab.Workers = *workers
	loads := make([]float64, *nloads)
	for i := range loads {
		loads[i] = 0.05 + 0.90*float64(i)/float64(max(*nloads-1, 1))
	}
	opts := experiment.RunOpts{
		Duration:     time.Duration(*minutes) * time.Minute,
		UseDRAMModel: *useModel,
		Workers:      *workers,
	}

	fmt.Println(lab.Baseline(*lcName, loads, opts))

	bes := []string{"stream-LLC", "stream-DRAM", "cpu_pwr", "brain", "streetview", "iperf"}
	if *beName != "all" {
		bes = []string{*beName}
	}
	for _, be := range bes {
		s := lab.Colocate(*lcName, be, loads, opts)
		fmt.Println(s)
		if v := s.Violations(); len(v) > 0 {
			fmt.Printf("!! SLO violations at loads %v\n\n", v)
		}
	}
}
