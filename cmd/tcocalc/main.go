// Command tcocalc reproduces the §5.3 total-cost-of-ownership analysis:
// the throughput/TCO improvement from raising cluster utilisation with
// Heracles, compared against an energy-proportionality controller.
//
// Usage:
//
//	tcocalc [-servers 10000] [-cost 2000] [-pue 2.0] [-watts 500]
//	        [-kwh 0.10]
package main

import (
	"flag"
	"fmt"

	"heracles/internal/tco"
)

func main() {
	servers := flag.Int("servers", 10000, "cluster size")
	cost := flag.Float64("cost", 2000, "capital cost per server ($)")
	pue := flag.Float64("pue", 2.0, "power usage effectiveness")
	watts := flag.Float64("watts", 500, "per-server peak power (W)")
	price := flag.Float64("kwh", 0.10, "electricity price in $/kWh")
	flag.Parse()

	p := tco.Barroso()
	p.Servers = *servers
	p.ServerCost = *cost
	p.PUE = *pue
	p.PeakWatts = *watts
	p.DollarsPerKWh = *price

	fmt.Printf("TCO model: %d servers, $%.0f/server, PUE %.1f, %gW peak, $%.2f/kWh\n\n",
		p.Servers, p.ServerCost, p.PUE, p.PeakWatts, p.DollarsPerKWh)
	fmt.Printf("%-28s %14s %14s\n", "scenario", "heracles", "energy-prop")
	for _, c := range tco.Analyze(p) {
		fmt.Printf("util %3.0f%% -> %3.0f%%             %+13.1f%% %+13.1f%%\n",
			100*c.BaseUtil, 100*c.TargetUtil, 100*c.HeraclesGain, 100*c.EnergyGain)
	}
	fmt.Printf("\ncluster TCO at 20%% util: $%.1fM; at 90%%: $%.1fM\n",
		p.ClusterTCO(0.20)/1e6, p.ClusterTCO(0.90)/1e6)
}
