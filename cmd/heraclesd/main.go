// Command heraclesd runs the Heracles controller as a long-lived daemon
// against the simulated server, logging every controller decision and
// mirroring each actuation into a filesystem tree with the real kernel
// interface formats (resctrl schemata, cgroup cpusets, cpufreq caps, HTB
// ceilings) so the decision stream can be inspected or replayed.
//
// Usage:
//
//	heraclesd [-lc websearch] [-be brain] [-load 0.4] [-minutes 10]
//	          [-fsroot /tmp/heracles-fs] [-trace]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"heracles/internal/actuate"
	"heracles/internal/core"
	"heracles/internal/experiment"
	"heracles/internal/hw"
	"heracles/internal/isolation"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

func main() {
	lcName := flag.String("lc", "websearch", "latency-critical workload")
	beName := flag.String("be", "brain", "best-effort workload")
	load := flag.Float64("load", 0.4, "LC load fraction")
	minutes := flag.Int("minutes", 10, "simulated minutes to run")
	fsroot := flag.String("fsroot", "", "mirror actuations into kernel-format files under this directory")
	traceFlag := flag.Bool("trace", true, "log controller decisions")
	flag.Parse()

	lab := experiment.DefaultLab()
	m := machine.New(lab.Cfg)
	m.SetLC(lab.LC(*lcName))
	m.AddBE(lab.BE(*beName), workload.PlaceDedicated)
	m.SetLoad(*load)

	var fs *actuate.FSActuator
	if *fsroot != "" {
		fs = actuate.NewFS(*fsroot, actuate.DefaultLayout())
	}

	ctl := core.New(m, lab.DRAMModel(*lcName), core.DefaultConfig())
	if *traceFlag {
		ctl.OnEvent(func(e core.Event) {
			log.Printf("[%8v] %-5s %-18s %s", e.At, e.Loop, e.Action, e.Detail)
		})
	}

	epochs := *minutes * 60
	for i := 0; i < epochs; i++ {
		t := m.Step()
		ctl.Step(m.Clock().Now())
		if fs != nil {
			mirror(fs, m, lab.Cfg, t)
		}
		if i%60 == 59 {
			fmt.Printf("t=%-6v tail=%6.1f%%SLO EMU=%5.1f%% beCores=%-2d beWays=%-2d dram=%4.1f%% power=%4.1f%%TDP\n",
				m.Clock().Now(), 100*t.TailLatency.Seconds()/m.SLO().Seconds(),
				100*t.EMU, t.BECores, t.BEWays, 100*t.DRAMUtil, 100*t.PowerFracTDP)
		}
	}
	if fs != nil {
		fmt.Printf("kernel-format actuation mirror written under %s\n", *fsroot)
	}
	_ = time.Second
}

// mirror reflects the machine's current isolation state into the
// filesystem actuator using the exact kernel formats.
func mirror(fs *actuate.FSActuator, m *machine.Machine, cfg hw.Config, t machine.Telemetry) {
	tc := cfg.TotalCores()
	beCores := isolation.NewCPUSet()
	lcCores := isolation.NewCPUSet()
	for c := 0; c < tc-t.BECores; c++ {
		lcCores.Add(c)
		lcCores.Add(c + tc) // sibling hyperthread
	}
	for c := tc - t.BECores; c < tc; c++ {
		beCores.Add(c)
		beCores.Add(c + tc)
	}
	check(fs.SetCPUSet("lc", lcCores))
	check(fs.SetCPUSet("be", beCores))

	lcWays := cfg.LLCWays - t.BEWays
	if t.BEWays == 0 {
		lcWays = cfg.LLCWays
	}
	lcMask, err := isolation.NewWayMask(cfg.LLCWays-lcWays, lcWays)
	check(err)
	check(fs.SetSchemata("lc", []isolation.WayMask{lcMask, lcMask}))
	if t.BEWays > 0 {
		beMask, err := isolation.NewWayMask(0, t.BEWays)
		check(err)
		check(fs.SetSchemata("be", []isolation.WayMask{beMask, beMask}))
	}

	if t.BEFreqCap > 0 {
		check(fs.SetFreqCap(beCores, t.BEFreqCap))
	}
	if ceil := m.BENetCeil(); ceil > 0 {
		check(fs.SetHTBCeil("be", ceil))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
