// Command heraclesd runs the Heracles controller as a long-lived daemon.
//
// With -addr it serves the control plane: an HTTP API to create, inspect,
// reconfigure and delete live simulated machine instances, an SSE
// telemetry stream per instance, a best-effort job scheduler dispatching
// over the pool (-sched-policy; job routes under /api/v1/jobs), and a
// Prometheus /metrics endpoint (see docs/API.md). The workload flags
// become the spec of one bootstrapped instance, so the daemon starts
// with a machine already running; -noboot starts with an empty pool
// instead.
//
// On SIGINT/SIGTERM the daemon drains: every instance driver stops
// between epochs and all SSE subscribers are closed (clients see a
// final "stream closed" comment) before the HTTP listener shuts down.
//
// Without -addr it runs headless: one instance advances as fast as the
// simulation resolves, logging every controller decision and printing a
// per-simulated-minute summary, then exits when -minutes elapse. With
// -minutes 0 the daemon runs until interrupted in either mode.
//
// In both modes -fsroot mirrors each epoch's actuations into a
// filesystem tree with the real kernel interface formats (resctrl
// schemata, cgroup cpusets, cpufreq caps, HTB ceilings) so the decision
// stream can be inspected or replayed.
//
// -checkpoint-dir enables crash recovery: every -checkpoint-every
// (default 30s) the daemon snapshots each live instance's full
// simulation state into <dir>/<id>.json (atomically, write-then-rename,
// wrapped in a checksummed envelope; the previous generation rotates to
// <id>.json.1). On startup the daemon restores every checkpoint found
// in the directory — each resumes bit-identically from its snapshot
// epoch — and skips the flag-bootstrapped instance when it restored at
// least one. A file that fails its checksum (crash mid-write, disk
// corruption) is refused and the rotated previous generation restores
// instead. Restored instances get fresh ids; the superseded files are
// removed once their replacements are written.
//
// Usage:
//
//	heraclesd [-addr :8080] [-lc websearch] [-be brain] [-load 0.4]
//	          [-minutes 10] [-speed 0] [-fsroot /tmp/heracles-fs]
//	          [-trace] [-noboot] [-sched-policy slack-greedy]
//	          [-drivers 0] [-max-instances 64]
//	          [-checkpoint-dir /var/lib/heracles] [-checkpoint-every 30s]
//	          [-pprof-addr localhost:6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"heracles/internal/actuate"
	"heracles/internal/core"
	"heracles/internal/debughttp"
	"heracles/internal/experiment"
	"heracles/internal/hw"
	"heracles/internal/isolation"
	"heracles/internal/machine"
	"heracles/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "HTTP listen address for the control-plane API (empty = headless run)")
	lcName := flag.String("lc", "websearch", "latency-critical workload name")
	beName := flag.String("be", "brain", "best-effort workload name (empty = none)")
	load := flag.Float64("load", 0.4, "LC load fraction of peak QPS")
	minutes := flag.Int("minutes", 10, "simulated minutes to run (0 = run until interrupted)")
	speed := flag.Float64("speed", 0, "simulated seconds per wall-clock second (0 = auto: as fast as possible headless, real time with -addr; -1 = as fast as possible)")
	fsroot := flag.String("fsroot", "", "mirror actuations into kernel-format files under this directory")
	traceFlag := flag.Bool("trace", true, "log controller decisions")
	noboot := flag.Bool("noboot", false, "with -addr, start with an empty instance pool instead of bootstrapping one from the flags")
	schedPolicy := flag.String("sched-policy", "slack-greedy", "fleet job scheduler placement policy (slack-greedy, bin-pack, spread, random)")
	drivers := flag.Int("drivers", 0, "epoch-scheduler worker pool size: goroutines stepping instance epochs (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "control-plane shards: independent epoch-scheduler/hub/fleet-scheduler domains with work-stealing between their pools")
	maxInstances := flag.Int("max-instances", 0, "instance pool cap; creates beyond it fail with 503 (0 = default 64)")
	ckptDir := flag.String("checkpoint-dir", "", "periodically snapshot every instance into this directory and crash-resume from it on startup")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "wall-clock cadence of -checkpoint-dir snapshots")
	ckptFormat := flag.String("checkpoint-format", "binary", "encoding for -checkpoint-dir snapshots: binary (.ckpt files) or json (.json files); resume auto-detects both")
	pprofAddr := flag.String("pprof-addr", "", "separate listen address for pprof profiles and Go runtime metrics (empty = off)")
	flag.Parse()

	if *ckptFormat != "binary" && *ckptFormat != "json" {
		log.Fatalf("heraclesd: -checkpoint-format %q, want binary or json", *ckptFormat)
	}

	if *pprofAddr != "" {
		dbg, err := debughttp.Start(*pprofAddr)
		if err != nil {
			log.Fatalf("heraclesd: %v", err)
		}
		defer dbg.Close()
		log.Printf("heraclesd: profiling listener on %s (/debug/pprof, runtime /metrics)", dbg.Addr)
	}

	serving := *addr != ""
	lab := experiment.DefaultLab()

	// -speed 0 is "auto": a headless run free-runs like the offline
	// experiments, a served daemon advances in real time.
	instSpeed := *speed
	if instSpeed == 0 {
		if serving {
			instSpeed = 1
		} else {
			instSpeed = serve.SpeedMax
		}
	}

	srv := serve.New(serve.Config{
		Lab:          lab,
		DefaultSpeed: instSpeed,
		SchedPolicy:  *schedPolicy,
		Drivers:      *drivers,
		Shards:       *shards,
		MaxInstances: *maxInstances,
	})
	defer srv.Close()

	var fs *actuate.FSActuator
	if *fsroot != "" {
		fs = actuate.NewFS(*fsroot, actuate.DefaultLayout())
	}

	maxEpochs := *minutes * 60
	runDone := make(chan struct{})
	// The hook runs in the instance's driver goroutine while main reads
	// the count on interrupt, so it must be atomic.
	var epochs atomic.Int64
	spec := serve.InstanceSpec{
		Name:      "boot",
		LC:        *lcName,
		Load:      *load,
		Speed:     instSpeed,
		MaxEpochs: maxEpochs,
		EpochHook: func(m *machine.Machine, t machine.Telemetry) {
			if fs != nil {
				mirror(fs, m, lab.Cfg, t)
			}
			n := epochs.Add(1)
			if !serving && n%60 == 0 {
				fmt.Printf("t=%-6v tail=%6.1f%%SLO EMU=%5.1f%% beCores=%-2d beWays=%-2d dram=%4.1f%% power=%4.1f%%TDP\n",
					m.Clock().Now(), 100*t.TailLatency.Seconds()/m.SLO().Seconds(),
					100*t.EMU, t.BECores, t.BEWays, 100*t.DRAMUtil, 100*t.PowerFracTDP)
			}
			if maxEpochs > 0 && n == int64(maxEpochs) {
				close(runDone)
			}
		},
	}
	if *beName != "" {
		spec.BEs = []serve.BEAttachment{{Workload: *beName}}
	}
	if *traceFlag {
		spec.Trace = func(e core.Event) {
			log.Printf("[%8v] %-5s %-18s %s", e.At, e.Loop, e.Action, e.Detail)
		}
	}

	// Crash recovery: restore every checkpoint in -checkpoint-dir before
	// deciding whether to bootstrap a fresh instance from the flags.
	restored := 0
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatalf("heraclesd: checkpoint dir: %v", err)
		}
		// Headless runs are flag-driven, so -minutes sets the restored
		// instances' horizon too; a serving daemon keeps each
		// checkpoint's own max_epochs. The raw -speed flag travels (not
		// the resolved default): with -speed unset (0) each instance
		// resumes at its own checkpointed speed, an explicit flag
		// overrides them all — except headless auto, which free-runs
		// like every headless instance.
		override := 0
		restoreSpeed := *speed
		if !serving {
			override = maxEpochs
			if restoreSpeed == 0 {
				restoreSpeed = serve.SpeedMax
			}
		}
		restored = restoreCheckpoints(srv, *ckptDir, restoreSpeed, override)
	}

	if (!serving || !*noboot) && restored == 0 {
		inst, err := srv.CreateInstance(spec)
		if err != nil {
			log.Fatalf("heraclesd: bootstrap instance: %v", err)
		}
		if serving {
			log.Printf("heraclesd: bootstrapped instance %s (%s + %s at %.0f%% load)",
				inst.ID(), *lcName, *beName, 100**load)
		}
	} else if restored > 0 {
		log.Printf("heraclesd: resumed %d instance(s) from %s, skipping flag bootstrap", restored, *ckptDir)
		if !serving && maxEpochs > 0 {
			// Headless resume: the restored instances have no epoch hook,
			// so completion is "every instance parked at its max_epochs"
			// (instances checkpointed at or past their target park on the
			// first status read).
			go func() {
				for {
					done := true
					for _, st := range srv.Registry().Statuses() {
						if st.State != serve.StateDone {
							done = false
							break
						}
					}
					if done {
						close(runDone)
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
			}()
		}
	}

	var ckptStop func()
	if *ckptDir != "" {
		ckptStop = startCheckpointer(srv, *ckptDir, *ckptEvery, *ckptFormat)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)

	// drain stops every instance driver between epochs and closes all SSE
	// subscribers — no simulation is abandoned mid-epoch and no stream is
	// dropped without its terminal "stream closed" comment. It is also
	// what lets http.Server.Shutdown below finish: open event-stream
	// connections only end once their hubs close.
	drain := func(sig os.Signal) {
		log.Printf("heraclesd: %v, draining %d instance(s) after %d epochs",
			sig, srv.Registry().Len(), epochs.Load())
		if ckptStop != nil {
			ckptStop() // final snapshot pass while the drivers still run
		}
		srv.Close()
	}

	exitCode := 0
	if serving {
		// No WriteTimeout: the SSE event streams are long-lived responses
		// that would be severed by one. Slow-client protection comes from
		// the header/read timeouts plus the per-request body limits the
		// API applies to mutating routes.
		httpSrv := &http.Server{
			Addr:              *addr,
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		errc := make(chan error, 1)
		go func() { errc <- httpSrv.ListenAndServe() }()
		log.Printf("heraclesd: control plane listening on %s (API under /api/v1, SSE per instance, Prometheus /metrics)", *addr)
		select {
		case err := <-errc:
			log.Printf("heraclesd: %v", err)
			if ckptStop != nil {
				ckptStop()
			}
			srv.Close()
			exitCode = 1
		case sig := <-interrupt:
			drain(sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = httpSrv.Shutdown(ctx)
			cancel()
			log.Printf("heraclesd: shutdown complete")
		}
	} else {
		if maxEpochs > 0 {
			select {
			case <-runDone:
				if ckptStop != nil {
					ckptStop()
				}
				srv.Close()
			case sig := <-interrupt:
				drain(sig)
			}
		} else {
			drain(<-interrupt)
		}
	}
	if fs != nil {
		fmt.Printf("kernel-format actuation mirror written under %s\n", *fsroot)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// restoreCheckpoints resumes every instance checkpointed under dir. Each
// restored instance continues bit-identically from its snapshot epoch
// under a fresh id. Restored files stay in place until the checkpointer
// has written their replacements — deleting them here would open a
// data-loss window in which a second crash finds an empty directory.
// Unreadable or unrestorable files are set aside as *.failed (preserved
// for inspection, out of the restore glob) with a log line — recovery
// should salvage what it can, not refuse to start. Both snapshot
// encodings resume — *.json and binary *.ckpt — and the reader detects
// each file's format from its bytes, so a directory written across
// -checkpoint-format changes restores in full.
func restoreCheckpoints(srv *serve.Server, dir string, speed float64, maxEpochs int) int {
	paths, err := checkpointGlob(dir)
	if err != nil {
		log.Printf("heraclesd: scanning %s: %v", dir, err)
		return 0
	}
	restored := 0
	for _, path := range paths {
		fail := func(err error) {
			log.Printf("heraclesd: restoring %s: %v (kept as %s.failed)", path, err, path)
			if err := os.Rename(path, path+".failed"); err != nil {
				log.Printf("heraclesd: %v", err)
			}
		}
		cp, src, err := serve.ReadCheckpointFallback(path)
		if err != nil {
			fail(err)
			continue
		}
		if src != path {
			log.Printf("heraclesd: %s failed verification, falling back to previous generation %s", path, src)
		}
		inst, err := srv.CreateInstance(serve.InstanceSpec{Restore: cp, Speed: speed, MaxEpochs: maxEpochs})
		if err != nil {
			fail(err)
			continue
		}
		log.Printf("heraclesd: restored instance %s from %s (epoch %d)",
			inst.ID(), path, cp.Engine.Epoch)
		restored++
	}
	return restored
}

// checkpointGlob lists every checkpoint file under dir, across both
// encodings: JSON snapshots as *.json, binary ones as *.ckpt.
func checkpointGlob(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	return append(paths, ckpts...), nil
}

// startCheckpointer snapshots every live instance into dir on a ticker,
// in the format named by -checkpoint-format ("binary" writes *.ckpt via
// the binary envelope, "json" writes *.json). The returned stop function
// takes one final snapshot pass (while the instance drivers still run)
// and then joins the goroutine; call it before draining the server.
func startCheckpointer(srv *serve.Server, dir string, every time.Duration, format string) func() {
	if every <= 0 {
		every = 30 * time.Second
	}
	ext, write := ".ckpt", serve.WriteCheckpointFileBinary
	if format == "json" {
		ext, write = ".json", serve.WriteCheckpointFile
	}
	stopc := make(chan struct{})
	donec := make(chan struct{})
	pass := func() {
		live := make(map[string]bool)
		for _, inst := range srv.Registry().List() {
			cp, err := inst.Checkpoint()
			if err != nil {
				continue // instance stopped mid-pass
			}
			path := filepath.Join(dir, inst.ID()+ext)
			if err := write(path, cp); err != nil {
				log.Printf("heraclesd: checkpoint %s: %v", inst.ID(), err)
				continue
			}
			live[inst.ID()+ext] = true
		}
		// Drop files for instances that no longer exist so a restart does
		// not resurrect deleted machines; their rotated previous
		// generations go with them. Both encodings are swept, so stale
		// snapshots from before a -checkpoint-format change go too.
		if paths, err := checkpointGlob(dir); err == nil {
			for _, p := range paths {
				if !live[filepath.Base(p)] {
					os.Remove(p)
					os.Remove(p + ".1")
				}
			}
		}
	}
	go func() {
		defer close(donec)
		// Snapshot immediately: the ticker's first fire is one full
		// interval away, and any just-restored instances must get their
		// replacement files (and stale files their garbage collection)
		// before the next crash, not 30 seconds later.
		pass()
		tk := time.NewTicker(every)
		defer tk.Stop()
		for {
			select {
			case <-stopc:
				return
			case <-tk.C:
				pass()
			}
		}
	}()
	return func() {
		close(stopc)
		<-donec
		pass()
	}
}

// mirror reflects the machine's current isolation state into the
// filesystem actuator using the exact kernel formats. It runs in the
// instance's driver goroutine, between epochs.
func mirror(fs *actuate.FSActuator, m *machine.Machine, cfg hw.Config, t machine.Telemetry) {
	tc := cfg.TotalCores()
	beCores := isolation.NewCPUSet()
	lcCores := isolation.NewCPUSet()
	for c := 0; c < tc-t.BECores; c++ {
		lcCores.Add(c)
		lcCores.Add(c + tc) // sibling hyperthread
	}
	for c := tc - t.BECores; c < tc; c++ {
		beCores.Add(c)
		beCores.Add(c + tc)
	}
	check(fs.SetCPUSet("lc", lcCores))
	check(fs.SetCPUSet("be", beCores))

	lcWays := cfg.LLCWays - t.BEWays
	if t.BEWays == 0 {
		lcWays = cfg.LLCWays
	}
	lcMask, err := isolation.NewWayMask(cfg.LLCWays-lcWays, lcWays)
	check(err)
	check(fs.SetSchemata("lc", []isolation.WayMask{lcMask, lcMask}))
	if t.BEWays > 0 {
		beMask, err := isolation.NewWayMask(0, t.BEWays)
		check(err)
		check(fs.SetSchemata("be", []isolation.WayMask{beMask, beMask}))
	}

	if t.BEFreqCap > 0 {
		check(fs.SetFreqCap(beCores, t.BEFreqCap))
	}
	if ceil := m.BENetCeil(); ceil > 0 {
		check(fs.SetHTBCeil("be", ceil))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
