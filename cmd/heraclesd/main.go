// Command heraclesd runs the Heracles controller as a long-lived daemon.
//
// With -addr it serves the control plane: an HTTP API to create, inspect,
// reconfigure and delete live simulated machine instances, an SSE
// telemetry stream per instance, a best-effort job scheduler dispatching
// over the pool (-sched-policy; job routes under /api/v1/jobs), and a
// Prometheus /metrics endpoint (see docs/API.md). The workload flags
// become the spec of one bootstrapped instance, so the daemon starts
// with a machine already running; -noboot starts with an empty pool
// instead.
//
// On SIGINT/SIGTERM the daemon drains: every instance driver stops
// between epochs and all SSE subscribers are closed (clients see a
// final "stream closed" comment) before the HTTP listener shuts down.
//
// Without -addr it runs headless: one instance advances as fast as the
// simulation resolves, logging every controller decision and printing a
// per-simulated-minute summary, then exits when -minutes elapse. With
// -minutes 0 the daemon runs until interrupted in either mode.
//
// In both modes -fsroot mirrors each epoch's actuations into a
// filesystem tree with the real kernel interface formats (resctrl
// schemata, cgroup cpusets, cpufreq caps, HTB ceilings) so the decision
// stream can be inspected or replayed.
//
// Usage:
//
//	heraclesd [-addr :8080] [-lc websearch] [-be brain] [-load 0.4]
//	          [-minutes 10] [-speed 0] [-fsroot /tmp/heracles-fs]
//	          [-trace] [-noboot] [-sched-policy slack-greedy]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"heracles/internal/actuate"
	"heracles/internal/core"
	"heracles/internal/experiment"
	"heracles/internal/hw"
	"heracles/internal/isolation"
	"heracles/internal/machine"
	"heracles/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "HTTP listen address for the control-plane API (empty = headless run)")
	lcName := flag.String("lc", "websearch", "latency-critical workload name")
	beName := flag.String("be", "brain", "best-effort workload name (empty = none)")
	load := flag.Float64("load", 0.4, "LC load fraction of peak QPS")
	minutes := flag.Int("minutes", 10, "simulated minutes to run (0 = run until interrupted)")
	speed := flag.Float64("speed", 0, "simulated seconds per wall-clock second (0 = auto: as fast as possible headless, real time with -addr; -1 = as fast as possible)")
	fsroot := flag.String("fsroot", "", "mirror actuations into kernel-format files under this directory")
	traceFlag := flag.Bool("trace", true, "log controller decisions")
	noboot := flag.Bool("noboot", false, "with -addr, start with an empty instance pool instead of bootstrapping one from the flags")
	schedPolicy := flag.String("sched-policy", "slack-greedy", "fleet job scheduler placement policy (slack-greedy, bin-pack, spread, random)")
	flag.Parse()

	serving := *addr != ""
	lab := experiment.DefaultLab()

	// -speed 0 is "auto": a headless run free-runs like the offline
	// experiments, a served daemon advances in real time.
	instSpeed := *speed
	if instSpeed == 0 {
		if serving {
			instSpeed = 1
		} else {
			instSpeed = serve.SpeedMax
		}
	}

	srv := serve.New(serve.Config{Lab: lab, DefaultSpeed: instSpeed, SchedPolicy: *schedPolicy})
	defer srv.Close()

	var fs *actuate.FSActuator
	if *fsroot != "" {
		fs = actuate.NewFS(*fsroot, actuate.DefaultLayout())
	}

	maxEpochs := *minutes * 60
	runDone := make(chan struct{})
	// The hook runs in the instance's driver goroutine while main reads
	// the count on interrupt, so it must be atomic.
	var epochs atomic.Int64
	spec := serve.InstanceSpec{
		Name:      "boot",
		LC:        *lcName,
		Load:      *load,
		Speed:     instSpeed,
		MaxEpochs: maxEpochs,
		EpochHook: func(m *machine.Machine, t machine.Telemetry) {
			if fs != nil {
				mirror(fs, m, lab.Cfg, t)
			}
			n := epochs.Add(1)
			if !serving && n%60 == 0 {
				fmt.Printf("t=%-6v tail=%6.1f%%SLO EMU=%5.1f%% beCores=%-2d beWays=%-2d dram=%4.1f%% power=%4.1f%%TDP\n",
					m.Clock().Now(), 100*t.TailLatency.Seconds()/m.SLO().Seconds(),
					100*t.EMU, t.BECores, t.BEWays, 100*t.DRAMUtil, 100*t.PowerFracTDP)
			}
			if maxEpochs > 0 && n == int64(maxEpochs) {
				close(runDone)
			}
		},
	}
	if *beName != "" {
		spec.BEs = []serve.BEAttachment{{Workload: *beName}}
	}
	if *traceFlag {
		spec.Trace = func(e core.Event) {
			log.Printf("[%8v] %-5s %-18s %s", e.At, e.Loop, e.Action, e.Detail)
		}
	}

	if !serving || !*noboot {
		inst, err := srv.CreateInstance(spec)
		if err != nil {
			log.Fatalf("heraclesd: bootstrap instance: %v", err)
		}
		if serving {
			log.Printf("heraclesd: bootstrapped instance %s (%s + %s at %.0f%% load)",
				inst.ID(), *lcName, *beName, 100**load)
		}
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)

	// drain stops every instance driver between epochs and closes all SSE
	// subscribers — no simulation is abandoned mid-epoch and no stream is
	// dropped without its terminal "stream closed" comment. It is also
	// what lets http.Server.Shutdown below finish: open event-stream
	// connections only end once their hubs close.
	drain := func(sig os.Signal) {
		log.Printf("heraclesd: %v, draining %d instance(s) after %d epochs",
			sig, srv.Registry().Len(), epochs.Load())
		srv.Close()
	}

	exitCode := 0
	if serving {
		httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
		errc := make(chan error, 1)
		go func() { errc <- httpSrv.ListenAndServe() }()
		log.Printf("heraclesd: control plane listening on %s (API under /api/v1, SSE per instance, Prometheus /metrics)", *addr)
		select {
		case err := <-errc:
			log.Printf("heraclesd: %v", err)
			srv.Close()
			exitCode = 1
		case sig := <-interrupt:
			drain(sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = httpSrv.Shutdown(ctx)
			cancel()
			log.Printf("heraclesd: shutdown complete")
		}
	} else {
		if maxEpochs > 0 {
			select {
			case <-runDone:
				srv.Close()
			case sig := <-interrupt:
				drain(sig)
			}
		} else {
			drain(<-interrupt)
		}
	}
	if fs != nil {
		fmt.Printf("kernel-format actuation mirror written under %s\n", *fsroot)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// mirror reflects the machine's current isolation state into the
// filesystem actuator using the exact kernel formats. It runs in the
// instance's driver goroutine, between epochs.
func mirror(fs *actuate.FSActuator, m *machine.Machine, cfg hw.Config, t machine.Telemetry) {
	tc := cfg.TotalCores()
	beCores := isolation.NewCPUSet()
	lcCores := isolation.NewCPUSet()
	for c := 0; c < tc-t.BECores; c++ {
		lcCores.Add(c)
		lcCores.Add(c + tc) // sibling hyperthread
	}
	for c := tc - t.BECores; c < tc; c++ {
		beCores.Add(c)
		beCores.Add(c + tc)
	}
	check(fs.SetCPUSet("lc", lcCores))
	check(fs.SetCPUSet("be", beCores))

	lcWays := cfg.LLCWays - t.BEWays
	if t.BEWays == 0 {
		lcWays = cfg.LLCWays
	}
	lcMask, err := isolation.NewWayMask(cfg.LLCWays-lcWays, lcWays)
	check(err)
	check(fs.SetSchemata("lc", []isolation.WayMask{lcMask, lcMask}))
	if t.BEWays > 0 {
		beMask, err := isolation.NewWayMask(0, t.BEWays)
		check(err)
		check(fs.SetSchemata("be", []isolation.WayMask{beMask, beMask}))
	}

	if t.BEFreqCap > 0 {
		check(fs.SetFreqCap(beCores, t.BEFreqCap))
	}
	if ceil := m.BENetCeil(); ceil > 0 {
		check(fs.SetHTBCeil("be", ceil))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
