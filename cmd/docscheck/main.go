// Command docscheck is the documentation gate run by `make docs-check`
// and the CI docs job. It fails (exit 1) when:
//
//   - an intra-repository markdown link points at a file that does not
//     exist,
//   - an internal/ package has no package comment (the architecture
//     story `go doc` tells), or
//   - a control-plane route registered in internal/serve or a
//     federation-router route registered in internal/fed is not
//     documented in docs/API.md,
//   - a Prometheus metric family the expositions can emit
//     (serve.MetricNames, fed.MetricNames) is not documented in
//     docs/API.md,
//   - or a Go source comment references a DESIGN.md section anchor
//     ("DESIGN.md §N") that does not exist as a "## §N" heading — the
//     architecture pointers in package comments must not rot as
//     DESIGN.md evolves.
//
// Usage:
//
//	docscheck [-root .]
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"heracles/internal/fed"
	"heracles/internal/serve"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	problems = append(problems, checkPackageComments(*root)...)
	problems = append(problems, checkRouteDocs(*root)...)
	problems = append(problems, checkMetricDocs(*root)...)
	problems = append(problems, checkDesignAnchors(*root)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links, package comments, API route/metric docs and DESIGN anchors all OK")
}

// linkRE matches [text](target) markdown links; targets with nested
// parentheses are out of scope.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link in every tracked
// markdown file resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := strings.Trim(m[1], "<>")
			if target == "" ||
				strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// checkPackageComments requires a package comment in every internal/
// package (any non-test file may carry it; by convention it lives in
// doc.go).
func checkPackageComments(root string) []string {
	var problems []string
	base := filepath.Join(root, "internal")
	entries, err := os.ReadDir(base)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", base, err)}
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(base, e.Name())
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(files) == 0 {
			continue
		}
		found := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", f, err))
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				found = true
				break
			}
		}
		if !found {
			problems = append(problems,
				fmt.Sprintf("internal/%s: no package comment (add a doc.go)", e.Name()))
		}
	}
	return problems
}

// designHeadingRE matches the "## §N Title" section headings of DESIGN.md.
var designHeadingRE = regexp.MustCompile(`(?m)^## §(\d+)\b`)

// designChainRE consumes one "§N" link of a reference chain after a
// "DESIGN.md" token: separators (spaces, commas, "and", comment markers
// and newlines — doc comments wrap) followed by the section number.
// "DESIGN.md §9,\n// §11" therefore yields both 9 and 11, while prose
// like "the §5.3 experiment" — a paper reference, not a DESIGN anchor —
// is never reached because it has no preceding DESIGN.md token.
var designChainRE = regexp.MustCompile(`^(?:[ \t\r\n,]|//|and\b)*§(\d+)`)

// designRefs extracts every DESIGN.md section number referenced in text.
func designRefs(text string) []string {
	var out []string
	for {
		i := strings.Index(text, "DESIGN.md")
		if i < 0 {
			return out
		}
		text = text[i+len("DESIGN.md"):]
		for {
			m := designChainRE.FindStringSubmatch(text)
			if m == nil {
				break
			}
			out = append(out, m[1])
			text = text[len(m[0]):]
		}
	}
}

// checkDesignAnchors requires every DESIGN.md section reference in a Go
// source file to resolve to an existing "## §N" heading.
func checkDesignAnchors(root string) []string {
	var problems []string
	designPath := filepath.Join(root, "DESIGN.md")
	design, err := os.ReadFile(designPath)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", designPath, err)}
	}
	sections := map[string]bool{}
	for _, m := range designHeadingRE.FindAllStringSubmatch(string(design), -1) {
		sections[m[1]] = true
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, sec := range designRefs(string(data)) {
			if !sections[sec] {
				problems = append(problems,
					fmt.Sprintf("%s: references DESIGN.md §%s, but DESIGN.md has no \"## §%s\" heading", path, sec, sec))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// checkMetricDocs requires docs/API.md to name every Prometheus metric
// family the exposition can emit (serve.MetricNames, which a test keeps
// in lockstep with the renderers).
func checkMetricDocs(root string) []string {
	apiPath := filepath.Join(root, "docs", "API.md")
	data, err := os.ReadFile(apiPath)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", apiPath, err)}
	}
	text := string(data)
	var problems []string
	for _, name := range append(serve.MetricNames(), fed.MetricNames()...) {
		if !strings.Contains(text, name) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: metric family %q is undocumented", name))
		}
	}
	return problems
}

// checkRouteDocs requires docs/API.md to name every registered
// control-plane route as the literal "METHOD /path" string.
func checkRouteDocs(root string) []string {
	apiPath := filepath.Join(root, "docs", "API.md")
	data, err := os.ReadFile(apiPath)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", apiPath, err)}
	}
	text := string(data)
	var problems []string
	for _, r := range serve.Routes() {
		if !strings.Contains(text, r) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: registered route %q is undocumented", r))
		}
	}
	for _, r := range fed.Routes() {
		if !strings.Contains(text, r) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: federation router route %q is undocumented", r))
		}
	}
	return problems
}
