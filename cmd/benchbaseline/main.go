// Command benchbaseline measures the cost of regenerating each artefact of
// the paper's evaluation and writes the results as JSON, so CI and future
// optimisation PRs can track the performance trajectory (ns/op, allocs/op
// per figure) against a committed baseline.
//
// Usage:
//
//	benchbaseline [-out BENCH_baseline.json] [-quick]
//	benchbaseline -check BENCH_baseline.json [-quick] [-tol 0.5] [-alloc-tol 0.25]
//
// -quick restricts the run to the microbenchmarks and a reduced sweep,
// which is what the CI smoke uses. -check compares a fresh run against a
// committed baseline instead of writing: ns/op may regress by at most
// -tol (fractional; CI passes a wide band because its hardware differs
// from the reference machine), allocs/op by at most -alloc-tol plus a
// small absolute slack (allocation counts are near-deterministic, so the
// tight band catches accidental allocation regressions on any hardware).
// Entries only in one of the two runs are reported but do not fail the
// check. Exit status 1 on any regression. Passing an explicit -out along
// with -check also writes the fresh measurements (one run serves both
// the gate and the artifact); without it, -check never writes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"heracles/internal/engine"
	"heracles/internal/experiment"
	"heracles/internal/fault"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/serve"
	"heracles/internal/sim"
	"heracles/internal/slo"
	"heracles/internal/workload"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// Baseline is the whole emitted file.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Entries    []Entry   `json:"entries"`
	CreatedAt  time.Time `json:"created_at"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file")
	quick := flag.Bool("quick", false, "microbenchmarks and a reduced sweep only")
	check := flag.String("check", "", "compare against this baseline instead of writing")
	tol := flag.Float64("tol", 0.5, "allowed fractional ns/op regression (0.5 = +50%)")
	allocTol := flag.Float64("alloc-tol", 0.25, "allowed fractional allocs/op regression")
	flag.Parse()

	lab := experiment.DefaultLab()
	loads := []float64{0.2, 0.5, 0.8}
	opts := experiment.RunOpts{
		Duration:     4 * time.Minute,
		Warmup:       time.Minute,
		UseDRAMModel: true,
	}
	// Warm every calibration and the DRAM model outside the timers.
	for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
		lab.LC(lc)
	}
	lab.DRAMModel("websearch")
	lab.BE("brain")

	benches := []struct {
		name  string
		quick bool
		fn    func(b *testing.B)
	}{
		{"MachineStep", true, func(b *testing.B) {
			m := machine.New(lab.Cfg)
			m.SetLC(lab.LC("websearch"))
			m.AddBE(lab.BE("brain"), workload.PlaceDedicated)
			m.SetLoad(0.5)
			m.Partition(12)
			for i := 0; i < 620; i++ {
				m.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		}},
		{"SchedTick", true, func(b *testing.B) {
			// The scheduler's hot path: one dispatch-loop tick over a
			// 64-node fleet with ~500 live jobs (the jobs never complete,
			// so steady-state ticks scan every running job and re-place
			// around churning BE enablement).
			const nNodes = 64
			jobs := make([]sched.JobSpec, 512)
			for i := range jobs {
				jobs[i] = sched.JobSpec{
					Name: "j", Workload: "brain",
					Demand: 1 + i%3, Work: 1e6 * time.Second, Retries: 1 << 20,
				}
			}
			s := sched.New(sched.Config{Policy: sched.SlackGreedy{}, Jobs: jobs, EvictGrace: time.Second})
			nodes := make([]sched.NodeState, nNodes)
			progress := func(j *sched.Job) float64 { return j.CPUSec + 1 }
			tick := func(i int) {
				now := time.Duration(i) * time.Second
				for n := range nodes {
					r := sim.DeriveRNG(uint64(i), uint64(n))
					nodes[n] = sched.NodeState{
						ID: n, BEAllowed: r.Float64() > 0.2,
						Slack: r.Float64() * 0.4, MaxBECores: 24,
					}
				}
				s.Tick(now, nodes, progress)
			}
			for i := 0; i < 64; i++ {
				tick(i) // reach steady state before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick(64 + i)
			}
		}},
		{"EngineStep", true, func(b *testing.B) {
			// The unified epoch loop's hot path: one Step of an 8-node
			// Heracles engine with root fan-out sampling — scenario load
			// evaluation, eight machine steps and controller polls, the
			// node-order reduction and the root's 100-sample draw. The
			// warmup runs past 600 epochs so the telemetry rings are full
			// and the measurement sees true steady state — ring growth
			// allocates until then.
			eng := engine.New(benchEngineConfig(lab))
			defer eng.Close()
			eng.InstallScenario(benchScenario())
			for i := 0; i < 650; i++ {
				eng.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		}},
		{"SnapshotRestore/json", true, func(b *testing.B) {
			// Checkpoint round trip of a warmed 8-node engine whose
			// telemetry rings are full (600 epochs/node), through the JSON
			// wire format: Snapshot's deep copy, Encode, Decode, Restore's
			// rebuild — the cost the interchange path pays per cycle.
			eng := engine.New(benchEngineConfig(lab))
			defer eng.Close()
			sc := benchScenario()
			eng.InstallScenario(sc)
			for i := 0; i < 620; i++ {
				eng.Step()
			}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := eng.Snapshot().Encode(&buf); err != nil {
					b.Fatal(err)
				}
				cp, err := engine.DecodeCheckpoint(&buf)
				if err != nil {
					b.Fatal(err)
				}
				r, err := engine.Restore(benchEngineConfig(lab), cp, &sc)
				if err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		}},
		{"SnapshotRestore/binary", true, func(b *testing.B) {
			// The same round trip through the binary codec — the format the
			// periodic checkpointer, shard migration and supervisor restart
			// actually pay for.
			eng := engine.New(benchEngineConfig(lab))
			defer eng.Close()
			sc := benchScenario()
			eng.InstallScenario(sc)
			for i := 0; i < 620; i++ {
				eng.Step()
			}
			var scratch []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = eng.Snapshot().AppendBinary(scratch[:0])
				cp, err := engine.DecodeCheckpointBinary(scratch)
				if err != nil {
					b.Fatal(err)
				}
				r, err := engine.Restore(benchEngineConfig(lab), cp, &sc)
				if err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		}},
		{"FaultInjectTick", true, func(b *testing.B) {
			// The fault path's per-epoch cost: each iteration injects one
			// leaf-crash into a warmed 8-node engine and resolves the epoch
			// that applies it — validation, schedule insertion, the
			// crash/restore bookkeeping and the down-node epoch itself.
			eng := engine.New(benchEngineConfig(lab))
			defer eng.Close()
			eng.InstallScenario(benchScenario())
			for i := 0; i < 120; i++ {
				eng.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.InjectFault(fault.Fault{
					Kind: fault.LeafCrash, Node: i % 8, Duration: time.Second,
				}); err != nil {
					b.Fatal(err)
				}
				eng.Step()
			}
		}},
		{"SLOWindowUpdate", true, func(b *testing.B) {
			// The error-budget engine's per-epoch cost: one Push into a
			// tracker whose bit ring is fully grown (the 3d window), with
			// the roll-off reads and burn-rate count updates for all four
			// windows. Alternating violation bits exercise both branches.
			tr := slo.NewTracker(slo.Config{}, time.Second)
			for i := 0; i < 260000; i++ {
				tr.Push(i%7 == 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Push(i%7 == 0)
			}
		}},
		{"HistogramObserve", true, func(b *testing.B) {
			// The latency histogram's record path: bucket selection by
			// bit-length plus two atomic adds — the cost every mailbox
			// command, epoch slice and checkpoint pays to be observable.
			var h serve.Histogram
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}},
		{"InstanceSchedule", true, func(b *testing.B) {
			// The serving core's dispatch overhead: schedule/pop/run cycles
			// through the shared epoch scheduler's heap and worker pool,
			// with 256 always-due tasks contending for 4 drivers — the
			// per-slice cost every live instance pays on top of its engine
			// step.
			b.ReportAllocs()
			serve.ScheduleBench(4, 256, b.N)
		}},
		{"InstanceMigrate", true, func(b *testing.B) {
			// The migration primitive's round trip: detach, snapshot the
			// engine, carry the checkpoint through the binary wire format,
			// restore into a fresh instance on the other shard's
			// pool, stop the origin — the per-move cost a federated
			// rebalance or drain pays per instance. The instance has run
			// its full 120-epoch scenario first, so the checkpoint carries
			// warmed telemetry rings.
			s := serve.New(serve.Config{Lab: lab, Shards: 2})
			defer s.Close()
			inst, err := s.CreateInstance(serve.InstanceSpec{
				Load: 0.5, Speed: serve.SpeedMax, MaxEpochs: 120,
			})
			if err != nil {
				b.Fatal(err)
			}
			for inst.Status().State != serve.StateDone {
				time.Sleep(time.Millisecond)
			}
			id, target := inst.ID(), 1-inst.Status().Shard
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.MigrateToShard(id, target)
				if err != nil {
					b.Fatal(err)
				}
				id, target = res.To, res.FromShard
			}
		}},
		{"ColocateSweep/sequential", true, func(b *testing.B) {
			o := opts
			o.Workers = 1
			for i := 0; i < b.N; i++ {
				lab.Colocate("websearch", "brain", loads, o)
			}
		}},
		{"ColocateSweep/parallel", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.Colocate("websearch", "brain", loads, opts)
			}
		}},
		{"Figure1/websearch", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.Figure1("websearch", loads)
			}
		}},
		{"Figure3/websearch", false, func(b *testing.B) {
			fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
			for i := 0; i < b.N; i++ {
				lab.Figure3("websearch", fracs, fracs)
			}
		}},
	}

	base := Baseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC(),
	}
	for _, bench := range benches {
		if *quick && !bench.quick {
			continue
		}
		res := testing.Benchmark(bench.fn)
		e := Entry{
			Name:        bench.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		base.Entries = append(base.Entries, e)
		fmt.Printf("%-28s %14.0f ns/op %8d B/op %6d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	if *check != "" {
		ok := checkAgainst(*check, base.Entries, *tol, *allocTol)
		// An explicit -out alongside -check also writes the fresh run, so
		// CI measures the quick set once instead of twice. The default
		// output path is suppressed here: it would clobber the committed
		// baseline the check just compared against.
		outSet := false
		flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })
		if outSet {
			writeBaseline(*out, base)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	writeBaseline(*out, base)
}

// benchEngineConfig is the 8-node Heracles fleet the engine benchmarks
// run on: brain/streetview split, root sampling, sequential stepping
// (the per-epoch cost, not the fan-out, is what the entry tracks).
func benchEngineConfig(lab *experiment.Lab) engine.Config {
	brain := lab.BE("brain")
	sview := lab.BE("streetview")
	return engine.Config{
		Nodes:       8,
		HW:          lab.Cfg,
		LC:          lab.LC("websearch"),
		Heracles:    true,
		Model:       lab.DRAMModel("websearch"),
		LookupBE:    lab.BE,
		SLOScale:    0.8,
		RootSamples: 100,
		Seed:        1,
		Workers:     1,
		InitialBEs: func(i int) []engine.BEAttach {
			if i%2 == 0 {
				return []engine.BEAttach{{WL: brain, Placement: workload.PlaceDedicated}}
			}
			return []engine.BEAttach{{WL: sview, Placement: workload.PlaceDedicated}}
		},
	}
}

// benchScenario is a long flat-load scenario (the horizon outlasts any
// b.N the runner picks).
func benchScenario() scenario.Scenario {
	return scenario.Scenario{Name: "bench", Duration: 1000 * time.Hour, Load: scenario.Flat(0.5)}
}

// writeBaseline marshals and writes the baseline file, exiting on error.
func writeBaseline(path string, base Baseline) {
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// allocSlack is the absolute allocs/op headroom on top of the fractional
// band, absorbing scheduling jitter in the parallel sweeps (goroutine
// stacks, pool descriptors) without letting real regressions through.
// Zero-alloc baselines get no slack at all: a benchmark that measured 0
// allocs/op (steady-state machine stepping) is deterministic, and losing
// that property is precisely the regression the gate exists to catch.
const allocSlack = 64

// checkAgainst compares the fresh entries to the committed baseline and
// reports every regression beyond the tolerance band. It returns false
// if any entry regressed.
func checkAgainst(path string, entries []Entry, tol, allocTol float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		return false
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %s: %v\n", path, err)
		return false
	}
	ref := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		ref[e.Name] = e
	}

	ok := true
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		seen[e.Name] = true
		b, found := ref[e.Name]
		if !found {
			fmt.Printf("%-28s NEW (not in %s)\n", e.Name, path)
			continue
		}
		nsLimit := b.NsPerOp * (1 + tol)
		allocLimit := int64(0)
		if b.AllocsPerOp > 0 {
			allocLimit = int64(float64(b.AllocsPerOp)*(1+allocTol)) + allocSlack
		}
		nsBad := e.NsPerOp > nsLimit
		allocBad := e.AllocsPerOp > allocLimit
		status := "ok"
		if nsBad || allocBad {
			status = "REGRESSION"
			ok = false
		}
		fmt.Printf("%-28s %-10s %12.0f -> %12.0f ns/op (limit %12.0f)  %8d -> %8d allocs/op (limit %8d)\n",
			e.Name, status, b.NsPerOp, e.NsPerOp, nsLimit, b.AllocsPerOp, e.AllocsPerOp, allocLimit)
	}
	for _, b := range base.Entries {
		if !seen[b.Name] {
			fmt.Printf("%-28s MISSING from this run (baseline-only entry)\n", b.Name)
		}
	}
	if ok {
		fmt.Printf("bench check passed against %s (ns/op +%.0f%%, allocs +%.0f%%+%d band)\n",
			path, 100*tol, 100*allocTol, allocSlack)
	}
	return ok
}
