// Command benchbaseline measures the cost of regenerating each artefact of
// the paper's evaluation and writes the results as JSON, so CI and future
// optimisation PRs can track the performance trajectory (ns/op, allocs/op
// per figure) against a committed baseline.
//
// Usage:
//
//	benchbaseline [-out BENCH_baseline.json] [-quick]
//
// -quick restricts the run to the microbenchmarks and a reduced sweep,
// which is what the CI smoke uses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"heracles/internal/experiment"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// Baseline is the whole emitted file.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Entries    []Entry   `json:"entries"`
	CreatedAt  time.Time `json:"created_at"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file")
	quick := flag.Bool("quick", false, "microbenchmarks and a reduced sweep only")
	flag.Parse()

	lab := experiment.DefaultLab()
	loads := []float64{0.2, 0.5, 0.8}
	opts := experiment.RunOpts{
		Duration:     4 * time.Minute,
		Warmup:       time.Minute,
		UseDRAMModel: true,
	}
	// Warm every calibration and the DRAM model outside the timers.
	for _, lc := range []string{"websearch", "ml_cluster", "memkeyval"} {
		lab.LC(lc)
	}
	lab.DRAMModel("websearch")
	lab.BE("brain")

	benches := []struct {
		name  string
		quick bool
		fn    func(b *testing.B)
	}{
		{"MachineStep", true, func(b *testing.B) {
			m := machine.New(lab.Cfg)
			m.SetLC(lab.LC("websearch"))
			m.AddBE(lab.BE("brain"), workload.PlaceDedicated)
			m.SetLoad(0.5)
			m.Partition(12)
			for i := 0; i < 620; i++ {
				m.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		}},
		{"ColocateSweep/sequential", true, func(b *testing.B) {
			o := opts
			o.Workers = 1
			for i := 0; i < b.N; i++ {
				lab.Colocate("websearch", "brain", loads, o)
			}
		}},
		{"ColocateSweep/parallel", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.Colocate("websearch", "brain", loads, opts)
			}
		}},
		{"Figure1/websearch", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.Figure1("websearch", loads)
			}
		}},
		{"Figure3/websearch", false, func(b *testing.B) {
			fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
			for i := 0; i < b.N; i++ {
				lab.Figure3("websearch", fracs, fracs)
			}
		}},
	}

	base := Baseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC(),
	}
	for _, bench := range benches {
		if *quick && !bench.quick {
			continue
		}
		res := testing.Benchmark(bench.fn)
		e := Entry{
			Name:        bench.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		base.Entries = append(base.Entries, e)
		fmt.Printf("%-28s %14.0f ns/op %8d B/op %6d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
