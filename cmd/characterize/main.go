// Command characterize regenerates the interference characterisation of
// the paper: Figure 1 (tail latency of each LC workload under each
// antagonist across load) and Figure 3 (max load under SLO as a function
// of cores and LLC).
//
// Usage:
//
//	characterize [-workload all] [-fig3] [-loads 19] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"heracles/internal/experiment"
)

func main() {
	workloadFlag := flag.String("workload", "all", "latency-critical workload name (websearch, ml_cluster, memkeyval or all)")
	fig3 := flag.Bool("fig3", false, "produce the Figure 3 cores x LLC surface instead of Figure 1")
	nloads := flag.Int("loads", 19, "number of load points (19 reproduces the paper's 5%..95% grid)")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	lab := experiment.DefaultLab()
	lab.Workers = *workers
	names := []string{"websearch", "ml_cluster", "memkeyval"}
	if *workloadFlag != "all" {
		names = []string{*workloadFlag}
	}

	loads := make([]float64, *nloads)
	for i := range loads {
		loads[i] = 0.05 + 0.90*float64(i)/float64(max(*nloads-1, 1))
	}

	for _, name := range names {
		if *fig3 {
			fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
			surface := lab.Figure3(name, fracs, fracs)
			fmt.Println(surface)
			continue
		}
		table := lab.Figure1(name, loads)
		fmt.Println(table)
	}
	_ = os.Stdout
}
