// Command fleet runs the fleet-scale scenario experiment: a mix of
// hardware generations, each cluster riding its own composed load shape
// (diurnal base, flash-crowd spike) with best-effort churn and a mid-run
// latency-target change, evaluated baseline vs Heracles and priced with
// the §5.3 TCO model.
//
// Usage:
//
//	fleet [-minutes 30] [-std 2] [-compact 1] [-leaves 8] [-seed 42] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"heracles/internal/fleet"
	"heracles/internal/hw"
	"heracles/internal/scenario"
	"heracles/internal/trace"
)

func main() {
	minutes := flag.Float64("minutes", 30, "scenario duration in simulated minutes")
	stdN := flag.Int("std", 2, "clusters of the reference dual-socket generation")
	compactN := flag.Int("compact", 1, "clusters of the compact single-socket generation")
	leaves := flag.Int("leaves", 8, "leaf servers per cluster")
	seed := flag.Uint64("seed", 42, "random seed (derives per-cluster streams)")
	workers := flag.Int("workers", 0, "concurrent cluster runs (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	dur := time.Duration(*minutes * float64(time.Minute))
	warmup := dur / 6

	// The reference generation rides a diurnal curve with a flash crowd
	// at two-thirds of the horizon, while brain departs for a nightly
	// rebuild and returns. Brain lives on the even leaves (the §5.3
	// half-and-half split), so the churn targets exactly those.
	stdEvents := make([]scenario.Event, 0, *leaves+1)
	for i := 0; i < *leaves; i += 2 {
		stdEvents = append(stdEvents,
			scenario.BEDepart(dur/4, i, "brain"),
			scenario.BEArrive(dur/2, i, "brain"))
	}
	std := scenario.Scenario{
		Name:     "diurnal+flashcrowd",
		Duration: dur,
		Load: scenario.Clamp(scenario.Sum(
			scenario.Diurnal(trace.DiurnalConfig{
				Duration: dur, Step: time.Second,
				MinLoad: 0.20, MaxLoad: 0.60, Seed: *seed,
			}),
			// The crowd peaks above the controller's LoadDisable threshold
			// (0.85), so Heracles parks every BE task for its duration —
			// the §5.2 "load changes" response.
			scenario.FlashCrowd{
				Start: dur * 2 / 3,
				Rise:  dur / 12, Hold: dur / 20, Fall: dur / 15,
				Amp: 0.30,
			},
			// Clamp below the 95%-load point the root SLO is calibrated
			// at: the cluster is provisioned for its crest.
		), 0, 0.88),
		Events: stdEvents,
	}

	// The compact generation sees stepped load-target changes (§5.2) and
	// a mid-run SLO tightening; it starts from a conservative leaf target
	// and lets the centralized root controller harvest slack.
	compact := scenario.Scenario{
		Name:     "steps+retarget",
		Duration: dur,
		Load: scenario.Steps{
			{At: 0, Load: 0.30},
			{At: dur / 3, Load: 0.45},
			{At: dur * 3 / 4, Load: 0.35},
		},
		Events: []scenario.Event{
			scenario.BEDepart(dur/3, scenario.AllLeaves, "streetview"),
			// Tighten every leaf's latency target mid-run; with
			// DynamicLeafTargets on, this re-anchors the root
			// controller's working scale.
			scenario.SLOScale(dur/2, scenario.AllLeaves, 0.60),
			scenario.BEArrive(dur*2/3, scenario.AllLeaves, "streetview"),
			scenario.LoadScale(dur*5/6, 1.1),
		},
	}

	cfg := fleet.Config{
		Seed:    *seed,
		Workers: *workers,
		Clusters: []fleet.ClusterSpec{
			{
				Name: "std", Count: *stdN,
				HW: hw.DefaultConfig(), Leaves: *leaves,
				Warmup: warmup, Scenario: std,
			},
			{
				Name: "compact", Count: *compactN,
				HW: hw.CompactConfig(), Leaves: *leaves,
				LeafTargetFrac: 0.65, DynamicLeafTargets: true,
				Warmup: warmup, Scenario: compact,
			},
		},
	}
	res := fleet.Run(cfg)
	fmt.Print(res.String())
}
