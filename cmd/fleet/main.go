// Command fleet runs the fleet-scale scenario experiment: a mix of
// hardware generations, each cluster riding its own composed load shape
// (diurnal base, flash-crowd spike) with best-effort churn and a mid-run
// latency-target change, evaluated baseline vs Heracles and priced with
// the §5.3 TCO model.
//
// With -policy, best-effort work arrives as a job stream instead of the
// static brain/streetview split: a deterministic synthetic batch of -jobs
// jobs per cluster is dispatched by the named placement policy
// (slack-greedy, bin-pack, spread, random; comma-separate to compare
// several), and the output gains the scheduler's goodput-vs-wasted BE
// CPU accounting. Arms are paired: the same -seed reproduces the same
// job stream and per-cluster streams for every policy, so
// `fleet -policy slack-greedy` vs `fleet -policy random` is an
// apples-to-apples placement-quality comparison.
//
// Usage:
//
//	fleet [-minutes 30] [-std 2] [-compact 1] [-leaves 8] [-seed 42]
//	      [-workers 0] [-policy slack-greedy,random] [-jobs 32]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"heracles/internal/fleet"
	"heracles/internal/hw"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/trace"
)

func main() {
	minutes := flag.Float64("minutes", 30, "scenario duration in simulated minutes")
	stdN := flag.Int("std", 2, "clusters of the reference dual-socket generation")
	compactN := flag.Int("compact", 1, "clusters of the compact single-socket generation")
	leaves := flag.Int("leaves", 8, "leaf servers per cluster")
	seed := flag.Uint64("seed", 42, "random seed (derives per-cluster streams)")
	workers := flag.Int("workers", 0, "concurrent cluster runs (0 = GOMAXPROCS, 1 = sequential)")
	policy := flag.String("policy", "", "BE job scheduler placement policy (comma-separate to compare; empty = scripted BE, no scheduler)")
	jobsN := flag.Int("jobs", 32, "synthetic BE jobs per cluster when -policy is set")
	flag.Parse()

	dur := time.Duration(*minutes * float64(time.Minute))
	warmup := dur / 6

	// The reference generation rides a diurnal curve with a flash crowd
	// at two-thirds of the horizon, while brain departs for a nightly
	// rebuild and returns. Brain lives on the even leaves (the §5.3
	// half-and-half split), so the churn targets exactly those.
	stdEvents := make([]scenario.Event, 0, *leaves+1)
	for i := 0; i < *leaves; i += 2 {
		stdEvents = append(stdEvents,
			scenario.BEDepart(dur/4, i, "brain"),
			scenario.BEArrive(dur/2, i, "brain"))
	}
	std := scenario.Scenario{
		Name:     "diurnal+flashcrowd",
		Duration: dur,
		Load: scenario.Clamp(scenario.Sum(
			scenario.Diurnal(trace.DiurnalConfig{
				Duration: dur, Step: time.Second,
				MinLoad: 0.20, MaxLoad: 0.60, Seed: *seed,
			}),
			// The crowd peaks above the controller's LoadDisable threshold
			// (0.85), so Heracles parks every BE task for its duration —
			// the §5.2 "load changes" response.
			scenario.FlashCrowd{
				Start: dur * 2 / 3,
				Rise:  dur / 12, Hold: dur / 20, Fall: dur / 15,
				Amp: 0.30,
			},
			// Clamp below the 95%-load point the root SLO is calibrated
			// at: the cluster is provisioned for its crest.
		), 0, 0.88),
		Events: stdEvents,
	}

	// The compact generation sees stepped load-target changes (§5.2) and
	// a mid-run SLO tightening; it starts from a conservative leaf target
	// and lets the centralized root controller harvest slack.
	compact := scenario.Scenario{
		Name:     "steps+retarget",
		Duration: dur,
		Load: scenario.Steps{
			{At: 0, Load: 0.30},
			{At: dur / 3, Load: 0.45},
			{At: dur * 3 / 4, Load: 0.35},
		},
		Events: []scenario.Event{
			scenario.BEDepart(dur/3, scenario.AllLeaves, "streetview"),
			// Tighten every leaf's latency target mid-run; with
			// DynamicLeafTargets on, this re-anchors the root
			// controller's working scale.
			scenario.SLOScale(dur/2, scenario.AllLeaves, 0.60),
			scenario.BEArrive(dur*2/3, scenario.AllLeaves, "streetview"),
			scenario.LoadScale(dur*5/6, 1.1),
		},
	}

	cfg := fleet.Config{
		Seed:    *seed,
		Workers: *workers,
		Clusters: []fleet.ClusterSpec{
			{
				Name: "std", Count: *stdN,
				HW: hw.DefaultConfig(), Leaves: *leaves,
				Warmup: warmup, Scenario: std,
			},
			{
				Name: "compact", Count: *compactN,
				HW: hw.CompactConfig(), Leaves: *leaves,
				LeafTargetFrac: 0.65, DynamicLeafTargets: true,
				Warmup: warmup, Scenario: compact,
			},
		},
	}

	if *policy == "" {
		fmt.Print(fleet.Run(cfg).String())
		return
	}

	// Scheduler mode: the BE source is a deterministic synthetic job
	// stream per cluster spec (same -seed, same jobs), and the scripted
	// brain/streetview churn above no longer applies — the scheduler owns
	// BE lifecycle, so the churn events are dropped to keep the
	// comparison about placement alone.
	for ci := range cfg.Clusters {
		events := cfg.Clusters[ci].Scenario.Events[:0]
		for _, ev := range cfg.Clusters[ci].Scenario.Events {
			if ev.Kind != scenario.EventBEArrive && ev.Kind != scenario.EventBEDepart {
				events = append(events, ev)
			}
		}
		cfg.Clusters[ci].Scenario.Events = events
		cfg.Clusters[ci].Jobs = sched.SyntheticJobs(*jobsN, dur, *seed+uint64(ci), []string{"brain", "streetview"})
	}
	policies := strings.Split(*policy, ",")
	res := fleet.RunPolicies(cfg, policies)
	fmt.Print(res.String())
}
